"""Batch query execution over one shared context.

A workload of many query points against the same datasets is the
common production shape (the paper's experiments run 200-query
workloads).  Executing them through one
:class:`~repro.runtime.context.QueryContext` amortizes the runtime
state: R-tree buffers stay warm, visibility graphs persist in the LRU
cache across queries, and *repeated* query points — ubiquitous in real
traffic — are answered from a per-batch memo without touching the
trees at all.

The batch functions take a :class:`~repro.runtime.metric.DistanceOracle`
so the same entry points serve Euclidean and obstructed execution;
:class:`~repro.core.engine.ObstacleDatabase` exposes them as
``batch_nearest`` / ``batch_range``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry.point import Point
from repro.index.rstar import RStarTree
from repro.runtime.metric import DistanceOracle
from repro.runtime.queries import metric_nearest, metric_range


def _memo_stats(metric: DistanceOracle):
    context = getattr(metric, "context", None)
    return getattr(context, "stats", None)


def batch_nearest(
    tree: RStarTree,
    metric: DistanceOracle,
    queries: Iterable[Point],
    k: int = 1,
    *,
    prune_bound: bool = True,
) -> list[list[tuple[Point, float]]]:
    """One k-NN result list per query point, in input order.

    Exactly equivalent to calling
    :func:`~repro.runtime.queries.metric_nearest` per point with a
    shared metric; duplicate query points are computed once (the
    datasets must not be mutated mid-batch).
    """
    memo: dict[Point, list[tuple[Point, float]]] = {}
    stats = _memo_stats(metric)
    results: list[list[tuple[Point, float]]] = []
    for q in queries:
        cached = memo.get(q)
        if cached is None:
            cached = metric_nearest(tree, metric, q, k, prune_bound=prune_bound)
            memo[q] = cached
        elif stats is not None:
            stats.batch_memo_hits += 1
        results.append(list(cached))
    return results


def batch_range(
    tree: RStarTree,
    metric: DistanceOracle,
    queries: Iterable[Point],
    e: float,
) -> list[list[tuple[Point, float]]]:
    """One range result list per query point, in input order.

    Exactly equivalent to calling
    :func:`~repro.runtime.queries.metric_range` per point with a
    shared metric; duplicate query points are computed once.
    """
    memo: dict[Point, list[tuple[Point, float]]] = {}
    stats = _memo_stats(metric)
    results: list[list[tuple[Point, float]]] = []
    for q in queries:
        cached = memo.get(q)
        if cached is None:
            cached = metric_range(tree, metric, q, e)
            memo[q] = cached
        elif stats is not None:
            stats.batch_memo_hits += 1
        results.append(list(cached))
    return results


def batch_distance(
    metric: DistanceOracle,
    pairs: Sequence[tuple[Point, Point]],
) -> list[float]:
    """Metric distances for many point pairs through one context.

    Pairs sharing their second element reuse the cached graph keyed at
    that expansion centre (the ODJ seed observation applied to ad-hoc
    distance workloads).
    """
    return [metric.distance(p, q) for p, q in pairs]
