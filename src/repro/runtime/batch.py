"""Batch query execution: one shared context, or a parallel worker pool.

A workload of many query points against the same datasets is the
common production shape (the paper's experiments run 200-query
workloads).  Sequentially, executing them through one
:class:`~repro.runtime.context.QueryContext` amortizes the runtime
state: R-tree buffers stay warm, visibility graphs persist in the LRU
cache across queries, and *repeated* query points — ubiquitous in real
traffic — are answered from a per-batch memo without touching the
trees at all.

Because query points are independent given a frozen obstacle version,
batches also parallelize: with ``workers >= 2`` (argument or the
``REPRO_BATCH_WORKERS`` environment variable) the distinct query
points are fanned out over a
:class:`~repro.runtime.executor.BatchExecutor` worker pool — one
private context per worker, per-worker stats merged on join, result
order preserved, and the duplicate-point memo applied up front (each
distinct point is evaluated exactly once in either path).

Every batch snapshots the obstacle version on entry and verifies it
before returning: a mid-batch obstacle mutation raises
:class:`~repro.errors.DatasetError` instead of silently returning
answers computed against a mix of obstacle versions.

The batch functions take a :class:`~repro.runtime.metric.DistanceOracle`
so the same entry points serve Euclidean and obstructed execution;
:class:`~repro.core.engine.ObstacleDatabase` exposes them as
``batch_nearest`` / ``batch_range``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import DatasetError
from repro.geometry.point import Point
from repro.index.rstar import RStarTree
from repro.runtime.executor import BatchExecutor
from repro.runtime.metric import DistanceOracle
from repro.runtime.queries import metric_nearest, metric_range

R = TypeVar("R")


def _memo_stats(metric: DistanceOracle):
    context = getattr(metric, "context", None)
    return getattr(context, "stats", None)


class _VersionGuard:
    """Snapshot of the metric's obstacle version at batch start.

    ``check()`` raises :class:`DatasetError` when the version moved —
    results computed so far span two obstacle sets and must not be
    returned as one batch.
    """

    __slots__ = ("_context", "_version")

    def __init__(self, metric: DistanceOracle) -> None:
        self._context = getattr(metric, "context", None)
        self._version = (
            self._context.version if self._context is not None else None
        )

    def check(self) -> None:
        if self._context is None:
            return
        current = self._context.version
        if current != self._version:
            raise DatasetError(
                "obstacle set mutated during batch execution "
                f"(version {self._version} -> {current}); the partial "
                "answers span two obstacle versions — re-run the batch "
                "after quiescing updates"
            )


def _run_batch(
    metric: DistanceOracle,
    queries: Iterable[Point],
    evaluate: Callable[[DistanceOracle, Point], R],
    *,
    workers: int | None,
    mode: str | None,
    tree: RStarTree | None = None,
    pool=None,
    pool_command: tuple | None = None,
) -> list[R]:
    """Shared batch skeleton: dedupe, guard, dispatch, reassemble.

    Duplicate query points are evaluated once and fanned back out to
    every occurrence (booked as ``batch_memo_hits``); distinct points
    run either through the caller's shared metric (sequential), a
    per-batch worker pool of spawned metrics, or — when the caller
    hands in a :class:`~repro.serve.pool.PersistentWorkerPool` with
    the matching ``pool_command`` — the long-lived warm worker pool.
    ``tree`` names the entity tree whose fork-worker page counters
    must be merged back.
    """
    queries = list(queries)
    guard = _VersionGuard(metric)
    stats = _memo_stats(metric)
    order: dict[Point, int] = {}
    for q in queries:
        if q not in order:
            order[q] = len(order)
    distinct = list(order)
    if stats is not None:
        stats.batch_memo_hits += len(queries) - len(distinct)

    executor = BatchExecutor(workers, mode)
    if executor.parallel and len(distinct) > 1 and pool is not None:
        evaluated = pool.run_batch(pool_command, distinct)
        if stats is not None:
            stats.parallel_batches += 1
            stats.pool_batches += 1
    elif (
        executor.parallel
        and len(distinct) > 1
        and hasattr(metric, "spawn")
    ):
        trees = [tree] if tree is not None else None
        evaluated = executor.run(
            metric, distinct, evaluate, stats=stats, trees=trees
        )
        if stats is not None:
            stats.parallel_batches += 1
    else:
        evaluated = [evaluate(metric, q) for q in distinct]
    guard.check()
    return [evaluated[order[q]] for q in queries]


def batch_nearest(
    tree: RStarTree,
    metric: DistanceOracle,
    queries: Iterable[Point],
    k: int = 1,
    *,
    prune_bound: bool = True,
    workers: int | None = None,
    mode: str | None = None,
    pool=None,
    pool_command: tuple | None = None,
) -> list[list[tuple[Point, float]]]:
    """One k-NN result list per query point, in input order.

    Exactly equivalent to calling
    :func:`~repro.runtime.queries.metric_nearest` per point with a
    shared metric; duplicate query points are computed once, and
    ``workers >= 2`` fans the distinct points over a worker pool (the
    obstacle set must not be mutated mid-batch — a moved version
    raises :class:`DatasetError`).  ``pool``/``pool_command`` (set by
    the database facade) reroute the fan-out to a persistent pool.
    """

    def evaluate(m: DistanceOracle, q: Point) -> list[tuple[Point, float]]:
        return metric_nearest(tree, m, q, k, prune_bound=prune_bound)

    shared = _run_batch(
        metric,
        queries,
        evaluate,
        workers=workers,
        mode=mode,
        tree=tree,
        pool=pool,
        pool_command=pool_command,
    )
    return [list(result) for result in shared]


def batch_range(
    tree: RStarTree,
    metric: DistanceOracle,
    queries: Iterable[Point],
    e: float,
    *,
    workers: int | None = None,
    mode: str | None = None,
    pool=None,
    pool_command: tuple | None = None,
) -> list[list[tuple[Point, float]]]:
    """One range result list per query point, in input order.

    Exactly equivalent to calling
    :func:`~repro.runtime.queries.metric_range` per point with a
    shared metric; duplicate query points are computed once, and
    ``workers >= 2`` parallelizes exactly as for :func:`batch_nearest`.
    """

    def evaluate(m: DistanceOracle, q: Point) -> list[tuple[Point, float]]:
        return metric_range(tree, m, q, e)

    shared = _run_batch(
        metric,
        queries,
        evaluate,
        workers=workers,
        mode=mode,
        tree=tree,
        pool=pool,
        pool_command=pool_command,
    )
    return [list(result) for result in shared]


def batch_distance(
    metric: DistanceOracle,
    pairs: Sequence[tuple[Point, Point]],
    *,
    pool=None,
) -> list[float]:
    """Metric distances for many point pairs through one context.

    Pairs sharing their second element reuse the cached graph keyed at
    that expansion centre (the ODJ seed observation applied to ad-hoc
    distance workloads).  Like the other batch entry points, a
    mid-batch obstacle mutation raises :class:`DatasetError`.  A
    caller-supplied persistent ``pool`` fans the pairs over its warm
    workers instead.
    """
    guard = _VersionGuard(metric)
    if pool is not None and len(pairs) > 1:
        results = pool.run_batch(("distance",), list(pairs))
        stats = _memo_stats(metric)
        if stats is not None:
            stats.parallel_batches += 1
            stats.pool_batches += 1
    else:
        results = [metric.distance(p, q) for p, q in pairs]
    guard.check()
    return results
