"""Shared traversal skeletons of the query runtime.

Every best-first algorithm in the codebase — incremental Euclidean
nearest neighbours [HS99], incremental closest pairs [HS98, CMTV00] —
is the same loop: a priority queue mixes *internal* items (R-tree
nodes or node pairs, keyed by a lower bound) with *final* items (data
entries or data pairs, keyed by their exact distance); popping a final
item emits it, popping an internal item expands it.  The seed code
duplicated that heap loop per module; :func:`best_first` is the single
shared skeleton, and the ``euclidean`` iterators are parameterizations
of it (see :mod:`repro.euclidean.nearest`,
:mod:`repro.euclidean.closest`).

:func:`bounded_expansion` is the other shared loop: Fig. 5's single
bounded Dijkstra from a query point that settles many candidates in
one traversal.  The obstructed metric's range refinement (OR and
ODJ's per-seed elimination) now batches its candidates through a
:class:`~repro.runtime.metric.DistanceField` instead — candidates stay
out of the cached graph, so the field's provisional Dijkstra survives
across calls — but the expansion skeleton remains the reference
formulation (and the standalone ``core.range`` path still uses it).
"""

from __future__ import annotations

import heapq
from itertools import count, islice
from typing import Any, Callable, Iterable, Iterator, TypeVar

from repro.geometry.point import Point
from repro.visibility.graph import VisibilityGraph

T = TypeVar("T")

#: One prioritised item: ``(key, is_final, payload)``.  ``key`` is the
#: exact distance for final items and a lower bound for internal ones.
Item = tuple[float, bool, Any]


def best_first(
    seeds: Iterable[Item],
    expand: Callable[[Any], Iterable[Item]],
) -> Iterator[tuple[Any, float]]:
    """The generic best-first skeleton.

    Yields ``(payload, key)`` for final items in ascending key order.
    Correctness requires the usual lower-bound property: every item
    produced by expanding an internal item has a key no smaller than
    the internal item's own key.
    """
    tiebreak = count()
    heap: list[tuple[float, int, bool, Any]] = []
    for key, is_final, payload in seeds:
        heapq.heappush(heap, (key, next(tiebreak), is_final, payload))
    while heap:
        key, __, is_final, payload = heapq.heappop(heap)
        if is_final:
            yield payload, key
        else:
            for k, f, p in expand(payload):
                heapq.heappush(heap, (k, next(tiebreak), f, p))


def take(stream: Iterator[T], k: int) -> list[T]:
    """The first ``k`` items of ``stream`` (fewer when it ends early)."""
    return list(islice(stream, k))


def emit_in_metric_order(
    candidates: Iterable[tuple[T, float]],
    evaluate: Callable[[T, float], float],
) -> Iterator[tuple[T, float]]:
    """The deferred-emit loop shared by incremental ONN and iOCP
    (paper Sec. 6's methodology).

    ``candidates`` arrive in ascending *lower-bound* order (Euclidean);
    ``evaluate(payload, lower_bound)`` produces the exact metric key.
    A held item is emitted as soon as its exact key is no larger than
    the newest candidate's lower bound: every later candidate has a
    larger lower bound — hence a larger exact key — so ascending exact
    order is guaranteed without a predefined cutoff.
    """
    hold: list[tuple[float, int, T]] = []
    seq = 0
    for payload, lower in candidates:
        while hold and hold[0][0] <= lower:
            key, __, ready = heapq.heappop(hold)
            yield ready, key
        heapq.heappush(hold, (evaluate(payload, lower), seq, payload))
        seq += 1
    while hold:
        key, __, ready = heapq.heappop(hold)
        yield ready, key


def bounded_expansion(
    graph: VisibilityGraph,
    q: Point,
    e: float,
    candidates: Iterable[Point],
) -> list[tuple[Point, float]]:
    """The expansion loop of Fig. 5: one bounded Dijkstra from ``q``,
    reporting candidate entities as they are settled.

    Shared by OR, the per-seed elimination step of ODJ, and the
    obstructed metric's range refinement.  Terminates as soon as the
    queue empties or every candidate has been reported.
    """
    candidates = set(candidates)
    pending = candidates - {q}
    result: list[tuple[Point, float]] = []
    if graph.has_node(q) and q in candidates:
        # The query point coincides with an entity: distance zero.
        result.append((q, 0.0))
    visited: set[Point] = set()
    tiebreak = count()
    heap: list[tuple[float, int, Point]] = [(0.0, next(tiebreak), q)]
    while heap and pending:
        d, __, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node in pending:
            result.append((node, d))
            pending.discard(node)
        for nbr, w in graph.neighbors(node).items():
            if nbr not in visited:
                nd = d + w
                if nd <= e:
                    heapq.heappush(heap, (nd, next(tiebreak), nbr))
    return result
