"""Spatial sharding: grid partition keys and per-shard version stamps.

The monolithic obstacle R-tree gives every cached visibility graph one
global version number — an obstacle inserted at the far end of the
universe invalidates a cached graph that could never have seen it.
Sharding splits the obstacle set over a uniform grid whose cells carry
Hilbert-ordered shard ids (:mod:`repro.index.hilbert`), so that

* a range retrieval fans out only to the shards whose cells intersect
  the query disk, and
* the version a cached graph is stamped with becomes a **per-shard
  version vector** (:class:`ShardVersionStamp`) restricted to the
  shards the graph's retrievals actually touched — mutations in other
  shards leave the graph valid.

This module owns the geometry (:class:`ShardGrid`) and the stamp; the
storage itself (:class:`~repro.core.source.ShardedObstacleIndex`)
lives with the other obstacle sources in :mod:`repro.core.source`.
"""

from __future__ import annotations

from math import inf
from typing import TYPE_CHECKING, Iterator

from repro.errors import DatasetError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.hilbert import hilbert_index, order_for_cells

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.source import ShardedObstacleIndex

#: Default shard-grid resolution: a 4x4 grid (16 shards).
DEFAULT_SHARD_ORDER = 2


class ShardGrid:
    """A uniform grid over a fixed universe, cells keyed in Hilbert order.

    The grid is *geometry only*: it maps points, rectangles and disks
    to cell coordinates and cells to shard keys.  Data outside the
    universe is clamped to the boundary cells, so the grid never
    rejects an insert — outliers simply pile up in the rim shards.
    """

    __slots__ = ("universe", "order", "side", "_cell_w", "_cell_h")

    def __init__(self, universe: Rect, order: int = DEFAULT_SHARD_ORDER) -> None:
        if order < 0:
            raise DatasetError(f"shard grid order must be >= 0, got {order}")
        self.universe = universe
        self.order = order
        self.side = 1 << order
        # Degenerate universes (single point / segment) get unit cells:
        # everything lands in the rim cells via clamping, which is fine.
        self._cell_w = (universe.width or 1.0) / self.side
        self._cell_h = (universe.height or 1.0) / self.side

    @classmethod
    def for_shards(cls, universe: Rect, n_shards: int) -> "ShardGrid":
        """The tightest grid with at least ``n_shards`` cells."""
        return cls(universe, order_for_cells(n_shards))

    @property
    def cell_count(self) -> int:
        """Total number of grid cells (``side ** 2``)."""
        return self.side * self.side

    # ------------------------------------------------------------ coordinates
    def _clamp(self, c: int) -> int:
        return 0 if c < 0 else (self.side - 1 if c >= self.side else c)

    def cell_of(self, p: Point) -> tuple[int, int]:
        """Grid cell containing ``p`` (clamped to the universe)."""
        cx = int((p.x - self.universe.minx) / self._cell_w)
        cy = int((p.y - self.universe.miny) / self._cell_h)
        return self._clamp(cx), self._clamp(cy)

    def cells_for_rect(self, rect: Rect) -> Iterator[tuple[int, int]]:
        """All cells the (clamped) rectangle overlaps."""
        cx0, cy0 = self.cell_of(Point(rect.minx, rect.miny))
        cx1, cy1 = self.cell_of(Point(rect.maxx, rect.maxy))
        for cx in range(cx0, cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                yield cx, cy

    def cells_for_disk(
        self, center: Point, radius: float
    ) -> Iterator[tuple[int, int]]:
        """All cells intersecting the closed disk ``(center, radius)``.

        The candidate set is the disk's bounding-box cell range, refined
        by the exact cell-rectangle-to-center distance (corner cells of
        the range may fall outside the disk).
        """
        if radius == inf:
            for cx in range(self.side):
                for cy in range(self.side):
                    yield cx, cy
            return
        bbox = Rect(
            center.x - radius, center.y - radius,
            center.x + radius, center.y + radius,
        )
        r_sq = radius * radius
        for cx, cy in self.cells_for_rect(bbox):
            if self.cell_rect(cx, cy).mindist_point_sq(center) <= r_sq:
                yield cx, cy

    def cell_rect(self, cx: int, cy: int) -> Rect:
        """The rectangle covered by cell ``(cx, cy)``.

        Rim cells extend to infinity conceptually (out-of-universe data
        is clamped into them); for intersection tests the finite cell
        suffices for interior cells, so rim cells are widened to cover
        the clamped half-planes.
        """
        minx = self.universe.minx + cx * self._cell_w
        miny = self.universe.miny + cy * self._cell_h
        maxx = minx + self._cell_w
        maxy = miny + self._cell_h
        if cx == 0:
            minx = -inf
        if cy == 0:
            miny = -inf
        if cx == self.side - 1:
            maxx = inf
        if cy == self.side - 1:
            maxy = inf
        return Rect(minx, miny, maxx, maxy)

    def key(self, cx: int, cy: int) -> int:
        """Hilbert shard key of cell ``(cx, cy)``."""
        return hilbert_index(cx, cy, self.order)

    def __repr__(self) -> str:
        return (
            f"ShardGrid(order={self.order}, side={self.side}, "
            f"universe={self.universe!r})"
        )


class ShardVersionStamp:
    """The per-shard version vector a cached visibility graph carries.

    Where a monolithic source stamps graphs with one integer, a sharded
    source stamps them with the versions of exactly the shards whose
    cells intersect the graph's coverage disk.  Staleness then means
    "one of *those* shards moved" — a mutation confined to any other
    shard leaves the stamp (and the graph) valid.

    Two subtleties:

    * **New shards.** A shard that did not exist at stamp time cannot
      appear in ``versions``; if one is created inside the stamp's disk
      the graph is stale even though every stamped shard is unchanged.
      The source's ``layout_version`` (bumped only on shard creation)
      detects this cheaply: while it is unchanged no new shard can
      exist anywhere, and when it moves the disk's occupied-shard set
      is recomputed once and compared against the stamped keys.
    * **Coverage growth.** When the runtime enlarges a graph's coverage
      disk (Fig. 8 iteration), :meth:`extend` folds the newly touched
      shards into the vector at their *current* versions — correct
      because extension happens immediately after a full retrieval of
      the enlarged disk, and only on stamps that were just validated.
    """

    __slots__ = ("_source", "center", "radius", "versions", "_layout")

    def __init__(
        self,
        source: "ShardedObstacleIndex",
        center: Point,
        radius: float,
        versions: dict[int, int],
        layout: int,
    ) -> None:
        self._source = source
        self.center = center
        self.radius = radius
        self.versions = versions
        self._layout = layout

    def is_stale(self) -> bool:
        """True when any shard this stamp depends on has moved.

        Consulted by the graph cache at every lookup and by
        ``ensure_coverage`` for held entries — the sharded analogue of
        the monolithic ``entry.version != source.version`` check.
        """
        source = self._source
        if source.layout_version != self._layout:
            for key in source.occupied_keys_for_disk(self.center, self.radius):
                if key not in self.versions:
                    return True  # a shard was created inside our disk
            self._layout = source.layout_version
        for key, version in self.versions.items():
            if source.shard_version(key) != version:
                return True
        return False

    def extend(self, radius: float) -> None:
        """Grow the stamp's disk to ``radius``, absorbing new shards.

        Must be called only after (a) :meth:`is_stale` returned False
        for the current state and (b) the graph's obstacle set was
        topped up from a retrieval over the enlarged disk.
        """
        if radius <= self.radius:
            return
        self.radius = radius
        source = self._source
        for key in source.occupied_keys_for_disk(self.center, radius):
            self.versions.setdefault(key, source.shard_version(key))
        self._layout = source.layout_version

    def snapshot(self) -> tuple[Point, float, dict[int, int], int]:
        """The stamp flattened for serialization: ``(center, radius,
        versions, layout_version)``.  Feed these back through the
        constructor (against the restored source) to reproduce the
        stamp — including its staleness verdict, since shard versions
        and layout round-trip with the source."""
        return self.center, self.radius, dict(self.versions), self._layout

    def __repr__(self) -> str:
        return (
            f"ShardVersionStamp(center={self.center!r}, "
            f"radius={self.radius:g}, shards={sorted(self.versions)})"
        )


def stamp_for(source: object, center: Point, radius: float):
    """The version stamp a graph built over ``disk(center, radius)``
    should carry: a :class:`ShardVersionStamp` for sharded sources, the
    plain integer version otherwise (0 for unversioned sources)."""
    fn = getattr(source, "version_stamp", None)
    if fn is not None:
        return fn(center, radius)
    return getattr(source, "version", 0)


def stamp_is_stale(stamp: object, current_version: int) -> bool:
    """Staleness of a cached graph's stamp.

    Integer stamps compare against the source's current (global)
    version; shard stamps consult the live per-shard versions.
    """
    checker = getattr(stamp, "is_stale", None)
    if checker is not None:
        return checker()
    return stamp != current_version
