"""Exception hierarchy for the :mod:`repro` library.

All errors raised intentionally by the library derive from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """An invalid geometric object or operation (e.g. degenerate polygon)."""


class IndexError_(ReproError):
    """An R-tree structural error (invalid capacity, corrupted node, ...).

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``SpatialIndexError``.
    """


SpatialIndexError = IndexError_


class DatasetError(ReproError):
    """A dataset cannot be generated, loaded or registered."""


class QueryError(ReproError):
    """A query was issued with invalid parameters (negative range, k < 1, ...)."""


class UnreachableError(ReproError):
    """Raised when a finite obstructed distance was required but the target
    is fully enclosed by obstacles (no obstacle-avoiding path exists)."""
