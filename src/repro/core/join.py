"""Obstacle e-distance join — ODJ (paper Sec. 5, Fig. 10).

An R-tree distance join produces the candidate pairs.  Rather than one
obstructed-distance evaluation per pair, the side with fewer *distinct*
points provides "seeds": for each seed, all its partners are filtered
with a single OR-style expansion over one shared visibility graph.
Seeds are processed in Hilbert order so consecutive obstacle range
retrievals touch nearby pages, maximising buffer locality.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.distance import ObstacleSource
from repro.core.range import expand_within_range
from repro.errors import QueryError
from repro.euclidean.join import distance_join
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.hilbert import hilbert_key
from repro.index.rstar import RStarTree
from repro.visibility.graph import VisibilityGraph


def obstacle_distance_join(
    tree_s: RStarTree,
    tree_t: RStarTree,
    obstacle_source: ObstacleSource,
    e: float,
    *,
    hilbert_order_seeds: bool = True,
    universe: Rect | None = None,
) -> list[tuple[Point, Point, float]]:
    """All pairs ``(s, t)`` with obstructed distance <= ``e``.

    Returns ``(s, t, d_O)`` triples.  ``hilbert_order_seeds=False``
    disables the seed-locality optimisation (used by the ablation
    benchmark).
    """
    if e < 0:
        raise QueryError(f"negative join distance: {e}")
    candidate_pairs = distance_join(tree_s, tree_t, e)
    if not candidate_pairs:
        return []

    s_partners: dict[Point, list[Point]] = defaultdict(list)
    t_partners: dict[Point, list[Point]] = defaultdict(list)
    for s, t, __ in candidate_pairs:
        s_partners[s].append(t)
        t_partners[t].append(s)

    # Seed the side with fewer distinct points (paper's observation:
    # five pairs over two distinct s-values need only two graphs).
    seed_from_s = len(s_partners) <= len(t_partners)
    partners = s_partners if seed_from_s else t_partners
    seeds = list(partners)

    if hilbert_order_seeds:
        if universe is None:
            universe = Rect.from_points(seeds)
        seeds.sort(key=lambda p: hilbert_key(p, universe))

    result: list[tuple[Point, Point, float]] = []
    for seed in seeds:
        mates = partners[seed]
        relevant = obstacle_source.obstacles_in_range(seed, e)
        graph = VisibilityGraph.build([seed] + mates, relevant)
        for mate, d_o in expand_within_range(graph, seed, e, mates):
            if seed_from_s:
                result.append((seed, mate, d_o))
            else:
                result.append((mate, seed, d_o))
    return result
