"""Obstacle e-distance join — ODJ (paper Sec. 5, Fig. 10).

An R-tree distance join produces the candidate pairs.  Rather than one
obstructed-distance evaluation per pair, the side with fewer *distinct*
points provides "seeds": for each seed, all its partners are filtered
with a single OR-style expansion over one shared visibility graph.
Seeds are processed in Hilbert order so consecutive obstacle range
retrievals touch nearby pages, maximising buffer locality.

The implementation is the shared runtime skeleton
(:func:`repro.runtime.queries.metric_distance_join`) parameterized
with the obstructed metric; with a shared
:class:`~repro.runtime.context.QueryContext`, per-seed graphs persist
in the LRU cache across join invocations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.distance import ObstacleSource
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.rstar import RStarTree
from repro.runtime.metric import resolve_metric
from repro.runtime.queries import metric_distance_join

if TYPE_CHECKING:
    from repro.runtime.context import QueryContext


def obstacle_distance_join(
    tree_s: RStarTree,
    tree_t: RStarTree,
    obstacle_source: ObstacleSource,
    e: float,
    *,
    hilbert_order_seeds: bool = True,
    universe: Rect | None = None,
    context: "QueryContext | None" = None,
) -> list[tuple[Point, Point, float]]:
    """All pairs ``(s, t)`` with obstructed distance <= ``e``.

    Returns ``(s, t, d_O)`` triples.  ``hilbert_order_seeds=False``
    disables the seed-locality optimisation (used by the ablation
    benchmark).
    """
    metric = resolve_metric(obstacle_source, context)
    return metric_distance_join(
        tree_s,
        tree_t,
        metric,
        e,
        hilbert_order_seeds=hilbert_order_seeds,
        universe=universe,
    )
