"""Nearest neighbours for a *moving* query point.

The paper closes with "as objects move in practice, it would be
interesting to study obstacle queries for moving entities" (Sec. 8).
This module implements the natural first step: the obstructed nearest
neighbour of a query point travelling along a polyline route.

The route ``[0, 1]`` (by arc length) is partitioned into maximal
intervals that share a single obstructed NN.  Exact split points are
roots of differences of obstructed-distance functions; we locate them
by adaptive bisection — both interval endpoints are evaluated exactly,
and an interval whose endpoints disagree on the winner is split until
it is shorter than ``tolerance``.  The result is exact everywhere
except within ``tolerance`` of each boundary, which the tests verify
against dense brute-force sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.core.distance import ObstacleSource
from repro.core.nearest import obstacle_nearest
from repro.errors import QueryError
from repro.geometry.point import Point
from repro.index.rstar import RStarTree

if TYPE_CHECKING:
    from repro.runtime.context import QueryContext


@dataclass(frozen=True)
class NNInterval:
    """One maximal stretch of the route with a fixed obstructed NN.

    ``start``/``end`` are arc-length fractions in ``[0, 1]``;
    ``start_distance``/``end_distance`` are the NN's obstructed
    distances at the two ends.
    """

    start: float
    end: float
    neighbor: Point
    start_distance: float
    end_distance: float


class PathNearestNeighbor:
    """Obstructed-NN profile of a moving query along a polyline."""

    def __init__(
        self,
        entity_tree: RStarTree,
        obstacle_source: ObstacleSource,
        waypoints: list[Point],
        *,
        tolerance: float = 1e-3,
        context: "QueryContext | None" = None,
    ) -> None:
        if len(waypoints) < 2:
            raise QueryError("a route needs at least two waypoints")
        if tolerance <= 0:
            raise QueryError(f"tolerance must be positive, got {tolerance}")
        self._tree = entity_tree
        self._source = obstacle_source
        self._waypoints = list(waypoints)
        self._tolerance = tolerance
        self._lengths = [
            waypoints[i].distance(waypoints[i + 1])
            for i in range(len(waypoints) - 1)
        ]
        self._total = sum(self._lengths)
        if self._total == 0:
            raise QueryError("route has zero length")
        if context is None:
            from repro.runtime.context import QueryContext

            context = QueryContext(obstacle_source)
        self._context = context

    def point_at(self, s: float) -> Point:
        """The route point at arc-length fraction ``s`` in ``[0, 1]``."""
        s = min(1.0, max(0.0, s))
        target = s * self._total
        walked = 0.0
        last = len(self._lengths) - 1
        for i, seg_len in enumerate(self._lengths):
            if walked + seg_len >= target or i == last:
                a = self._waypoints[i]
                b = self._waypoints[i + 1]
                frac = 0.0 if seg_len == 0 else (target - walked) / seg_len
                frac = min(1.0, max(0.0, frac))
                return Point(a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y))
            walked += seg_len
        return self._waypoints[-1]

    def nn_at(self, s: float) -> tuple[Point, float]:
        """The obstructed NN (and its distance) at fraction ``s``."""
        q = self.point_at(s)
        result = obstacle_nearest(
            self._tree, self._source, q, 1, context=self._context
        )
        if not result:
            raise QueryError("entity dataset is empty")
        return result[0]

    def profile(self) -> list[NNInterval]:
        """Partition the route into constant-NN intervals."""
        # Seed with the segment endpoints: NN changes are much more
        # likely where the direction changes.
        seeds = [0.0]
        walked = 0.0
        for seg_len in self._lengths[:-1]:
            walked += seg_len
            seeds.append(walked / self._total)
        seeds.append(1.0)

        evaluated: dict[float, tuple[Point, float]] = {}

        def nn(s: float) -> tuple[Point, float]:
            if s not in evaluated:
                evaluated[s] = self.nn_at(s)
            return evaluated[s]

        boundaries: list[float] = [0.0]
        pieces: list[tuple[float, float]] = list(zip(seeds, seeds[1:]))
        resolved: list[tuple[float, float]] = []
        while pieces:
            lo, hi = pieces.pop()
            p_lo, __ = nn(lo)
            p_hi, __ = nn(hi)
            if p_lo == p_hi or (hi - lo) <= self._tolerance:
                resolved.append((lo, hi))
                if p_lo != p_hi:
                    boundaries.append(hi)
                continue
            mid = (lo + hi) / 2.0
            pieces.append((lo, mid))
            pieces.append((mid, hi))

        # Merge adjacent resolved pieces with the same winner.
        resolved.sort()
        intervals: list[NNInterval] = []
        for lo, hi in resolved:
            winner, d_lo = nn(lo)
            if intervals and intervals[-1].neighbor == winner:
                last = intervals[-1]
                intervals[-1] = NNInterval(
                    last.start, hi, winner, last.start_distance, nn(hi)[1]
                )
            else:
                intervals.append(NNInterval(lo, hi, winner, d_lo, nn(hi)[1]))
        return intervals


def path_nearest(
    entity_tree: RStarTree,
    obstacle_source: ObstacleSource,
    waypoints: list[Point],
    *,
    tolerance: float = 1e-3,
    context: "QueryContext | None" = None,
) -> list[NNInterval]:
    """Convenience wrapper: the constant-NN partition of a route."""
    return PathNearestNeighbor(
        entity_tree,
        obstacle_source,
        waypoints,
        tolerance=tolerance,
        context=context,
    ).profile()
