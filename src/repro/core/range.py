"""Obstacle range query — OR (paper Sec. 3, Fig. 5).

Candidates are the entities within *Euclidean* distance ``e`` (a
superset of the answer); the relevant obstacles are those intersecting
the same disk (no farther obstacle can shorten or block a path of
length <= ``e``).  One Dijkstra-style expansion from ``q`` over the
local visibility graph then reports every candidate whose obstructed
distance is within ``e`` — a single traversal for all candidates, not
one shortest-path run each.

The implementation is the shared runtime skeleton
(:func:`repro.runtime.queries.metric_range`) parameterized with the
obstructed metric; pass a :class:`~repro.runtime.context.QueryContext`
to share cached visibility graphs across queries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.core.distance import ObstacleSource
from repro.geometry.point import Point
from repro.index.rstar import RStarTree
from repro.runtime.metric import resolve_metric
from repro.runtime.queries import metric_range
from repro.runtime.skeletons import bounded_expansion
from repro.visibility.graph import VisibilityGraph

if TYPE_CHECKING:
    from repro.runtime.context import QueryContext


def obstacle_range(
    entity_tree: RStarTree,
    obstacle_source: ObstacleSource,
    q: Point,
    e: float,
    *,
    context: "QueryContext | None" = None,
) -> list[tuple[Point, float]]:
    """Entities within obstructed distance ``e`` of ``q``.

    Returns ``(entity, d_O(entity, q))`` pairs in ascending obstructed
    distance.  With ``context`` the local visibility graph for ``q``
    is fetched from (and retained in) the shared cache.
    """
    metric = resolve_metric(obstacle_source, context)
    return metric_range(entity_tree, metric, q, e)


def expand_within_range(
    graph: VisibilityGraph,
    q: Point,
    e: float,
    candidates: Iterable[Point],
) -> list[tuple[Point, float]]:
    """The expansion loop of Fig. 5 — kept as a compatibility alias for
    :func:`repro.runtime.skeletons.bounded_expansion`."""
    return bounded_expansion(graph, q, e, candidates)
