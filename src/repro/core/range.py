"""Obstacle range query — OR (paper Sec. 3, Fig. 5).

Candidates are the entities within *Euclidean* distance ``e`` (a
superset of the answer); the relevant obstacles are those intersecting
the same disk (no farther obstacle can shorten or block a path of
length <= ``e``).  One Dijkstra-style expansion from ``q`` over the
local visibility graph then reports every candidate whose obstructed
distance is within ``e`` — a single traversal for all candidates, not
one shortest-path run each.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Iterable

from repro.core.distance import ObstacleSource
from repro.errors import QueryError
from repro.euclidean.range import entities_in_range
from repro.geometry.point import Point
from repro.index.rstar import RStarTree
from repro.visibility.graph import VisibilityGraph


def obstacle_range(
    entity_tree: RStarTree,
    obstacle_source: ObstacleSource,
    q: Point,
    e: float,
) -> list[tuple[Point, float]]:
    """Entities within obstructed distance ``e`` of ``q``.

    Returns ``(entity, d_O(entity, q))`` pairs in ascending obstructed
    distance.
    """
    if e < 0:
        raise QueryError(f"negative range: {e}")
    candidates = entities_in_range(entity_tree, q, e)
    if not candidates:
        return []
    relevant = obstacle_source.obstacles_in_range(q, e)
    graph = VisibilityGraph.build([q] + candidates, relevant)
    return expand_within_range(graph, q, e, candidates)


def expand_within_range(
    graph: VisibilityGraph,
    q: Point,
    e: float,
    candidates: Iterable[Point],
) -> list[tuple[Point, float]]:
    """The expansion loop of Fig. 5: one bounded Dijkstra from ``q``,
    reporting candidate entities as they are settled.

    Shared by OR and the per-seed elimination step of ODJ.  Terminates
    as soon as the queue empties or every candidate has been reported.
    """
    pending = set(candidates)
    pending.discard(q)
    result: list[tuple[Point, float]] = []
    if graph.has_node(q) and q in set(candidates):
        # The query point coincides with an entity: distance zero.
        result.append((q, 0.0))
    visited: set[Point] = set()
    tiebreak = count()
    heap: list[tuple[float, int, Point]] = [(0.0, next(tiebreak), q)]
    while heap and pending:
        d, __, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node in pending:
            result.append((node, d))
            pending.discard(node)
        for nbr, w in graph.neighbors(node).items():
            if nbr not in visited:
                nd = d + w
                if nd <= e:
                    heapq.heappush(heap, (nd, next(tiebreak), nbr))
    return result
