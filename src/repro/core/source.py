"""Obstacle sources: counted access to the obstacle R-tree(s).

The query algorithms never touch the obstacle R-tree directly; they go
through an :class:`ObstacleIndex`, which performs the filter/refinement
range retrieval of relevant obstacles (paper Sec. 3).  The paper notes
that "the extension to multiple obstacle datasets is straightforward" —
:class:`CompositeObstacleIndex` is that extension: it unions the
relevant obstacles of several indexes.
"""

from __future__ import annotations

from math import inf
from typing import Iterable, Sequence

from repro.errors import DatasetError
from repro.euclidean.range import obstacles_in_range
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.rstar import RStarTree
from repro.model import Obstacle


class ObstacleIndex:
    """A single obstacle dataset behind an R-tree.

    The index is *versioned*: every mutation (insert/delete) bumps
    ``version``, and the query runtime stamps each cached visibility
    graph with the version it was built against, so stale graphs are
    discarded lazily at their next lookup instead of being rebuilt
    eagerly on every update.  The version also folds in the tree's
    entry count, so even mutations applied directly to ``tree``
    (bypassing :meth:`insert`/:meth:`delete`) are detected — a
    balanced sequence of direct inserts and deletes between two
    queries is the one drift this cannot see; route mutations through
    the index (or :class:`~repro.core.engine.ObstacleDatabase`) for
    full tracking.
    """

    def __init__(self, tree: RStarTree) -> None:
        self.tree = tree
        self._mutations = 0

    @property
    def version(self) -> int:
        """Changes on every indexed mutation (the weight-2 counter
        strictly dominates the +-1 size change); also moves when the
        tree is resized behind the index's back."""
        return 2 * self._mutations + len(self.tree)

    def obstacles_in_range(self, center: Point, radius: float) -> list[Obstacle]:
        """Obstacles intersecting the disk (filtered by MBR, refined
        against the polygon)."""
        if radius == inf:
            return [data for data, __ in self.tree.items()]
        return obstacles_in_range(self.tree, center, radius)

    def insert(self, obstacle: Obstacle) -> None:
        """Add one obstacle and bump the version."""
        self.tree.insert(obstacle, obstacle.mbr)
        self._mutations += 1

    def delete(self, obstacle: Obstacle) -> bool:
        """Remove one obstacle; bumps the version when found."""
        found = self.tree.delete(obstacle, obstacle.mbr)
        if found:
            self._mutations += 1
        return found

    def find(self, oid: int) -> Obstacle | None:
        """The obstacle with id ``oid``, or ``None`` (linear scan)."""
        for obstacle, __ in self.tree.items():
            if obstacle.oid == oid:
                return obstacle
        return None

    def universe(self) -> Rect | None:
        """MBR of the whole obstacle dataset (``None`` when empty)."""
        return self.tree.mbr()

    def __len__(self) -> int:
        return len(self.tree)


class CompositeObstacleIndex:
    """Several obstacle datasets queried as one.

    Obstacle ids must be globally unique across the member indexes —
    :class:`repro.core.engine.ObstacleDatabase` assigns them from one
    sequence.
    """

    def __init__(self, indexes: Sequence[ObstacleIndex]) -> None:
        if not indexes:
            raise DatasetError("composite obstacle index needs >= 1 member")
        self.indexes = list(indexes)

    @property
    def version(self) -> int:
        """Sum of member versions — moves whenever any member mutates."""
        return sum(idx.version for idx in self.indexes)

    def obstacles_in_range(self, center: Point, radius: float) -> list[Obstacle]:
        """Union of the members' relevant obstacles."""
        result: list[Obstacle] = []
        seen: set[int] = set()
        for index in self.indexes:
            for obs in index.obstacles_in_range(center, radius):
                if obs.oid not in seen:
                    seen.add(obs.oid)
                    result.append(obs)
        return result

    def universe(self) -> Rect | None:
        """MBR over all member datasets."""
        rects = [idx.universe() for idx in self.indexes]
        rects = [r for r in rects if r is not None]
        if not rects:
            return None
        return Rect.union_all(rects)

    def __len__(self) -> int:
        return sum(len(idx) for idx in self.indexes)


def build_obstacle_index(
    obstacles: Iterable[Obstacle],
    *,
    bulk: bool = True,
    name: str = "obstacles",
    **tree_kwargs: object,
) -> ObstacleIndex:
    """Index an obstacle collection with an R*-tree.

    ``bulk=True`` uses STR packing (fast benchmark setup); otherwise
    obstacles are inserted one by one through the full R* insert path.
    """
    from repro.index.bulk import str_pack

    tree = RStarTree(name=name, **tree_kwargs)  # type: ignore[arg-type]
    items = [(obs, obs.mbr) for obs in obstacles]
    if bulk:
        str_pack(tree, items)
    else:
        for obs, rect in items:
            tree.insert(obs, rect)
    return ObstacleIndex(tree)
