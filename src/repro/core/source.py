"""Obstacle sources: counted access to the obstacle R-tree(s).

The query algorithms never touch the obstacle R-tree directly; they go
through an :class:`ObstacleIndex`, which performs the filter/refinement
range retrieval of relevant obstacles (paper Sec. 3).  The paper notes
that "the extension to multiple obstacle datasets is straightforward" —
:class:`CompositeObstacleIndex` is that extension: it unions the
relevant obstacles of several indexes.

:class:`ShardedObstacleIndex` is the scale-out variant: one dataset
spatially partitioned over a :class:`~repro.runtime.sharding.ShardGrid`
into many small per-shard R-trees.  Range retrievals fan out only to
the shards whose cells intersect the query disk, and versioning is a
per-shard vector, so the runtime invalidates cached visibility graphs
shard-locally instead of globally.
"""

from __future__ import annotations

import weakref
from math import inf
from typing import Callable, Iterable, Sequence

from repro.errors import DatasetError
from repro.euclidean.range import obstacles_in_range
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.rstar import RStarTree
from repro.model import Obstacle
from repro.runtime.sharding import ShardGrid, ShardVersionStamp


#: Signature of a mutation listener: ``callback(kind, obstacle)``.
#: Each mutation fires two synchronous notifications: a
#: ``"pre-insert"`` / ``"pre-delete"`` immediately *before* the
#: mutation is applied (so listeners can snapshot which of their
#: derived structures are still consistent with the pre-mutation
#: state) and the matching ``"insert"`` / ``"delete"`` immediately
#: *after* (so version stamps taken inside the callback describe the
#: post-mutation state).  A delete that finds nothing fires only the
#: ``pre-`` notification.
MutationListener = Callable[[str, Obstacle], None]


class _MutationFeed:
    """Weakly-held mutation listeners of one obstacle source.

    The query runtime subscribes its repair-first cache maintenance
    here (:meth:`repro.runtime.context.QueryContext._on_obstacle_mutation`).
    Bound-method listeners are held through ``weakref.WeakMethod`` so a
    source never keeps a dead ``QueryContext`` (and its graph cache)
    alive; dead references are pruned on notify.  Plain functions and
    lambdas have no bound instance to track and are held strongly —
    their lifetime is the subscriber's responsibility.
    """

    __slots__ = ("_subs",)

    def __init__(self) -> None:
        self._subs: list[Callable[[], MutationListener | None]] = []

    def subscribe(self, callback: MutationListener) -> None:
        try:
            ref: Callable[[], MutationListener | None] = weakref.WeakMethod(
                callback  # type: ignore[arg-type]
            )
        except TypeError:
            ref = lambda cb=callback: cb  # noqa: E731
        self._subs.append(ref)

    def notify(self, kind: str, obstacle: Obstacle) -> None:
        if not self._subs:
            return
        live = []
        for ref in self._subs:
            callback = ref()
            if callback is not None:
                live.append(ref)
                callback(kind, obstacle)
        self._subs = live


class ObstacleIndex:
    """A single obstacle dataset behind an R-tree.

    The index is *versioned*: every mutation (insert/delete) bumps
    ``version``, and the query runtime stamps each cached visibility
    graph with the version it was built against, so stale graphs are
    discarded lazily at their next lookup instead of being rebuilt
    eagerly on every update.  The version also folds in the tree's
    entry count, so even mutations applied directly to ``tree``
    (bypassing :meth:`insert`/:meth:`delete`) are detected — a
    balanced sequence of direct inserts and deletes between two
    queries is the one drift this cannot see; route mutations through
    the index (or :class:`~repro.core.engine.ObstacleDatabase`) for
    full tracking.
    """

    def __init__(self, tree: RStarTree, *, mutations: int = 0) -> None:
        self.tree = tree
        self._mutations = mutations
        self._feed = _MutationFeed()

    @property
    def mutation_count(self) -> int:
        """Indexed mutations applied so far (half of the version's
        mutation weight).  Persisted by snapshots — restoring it keeps
        the restored index's :attr:`version` identical to the live
        one's, so serialized graph stamps stay comparable."""
        return self._mutations

    def subscribe(self, callback: MutationListener) -> None:
        """Register a (weakly held) mutation listener; every
        :meth:`insert` / :meth:`delete` calls it twice — ``pre-insert``
        / ``pre-delete`` just before applying, ``insert`` / ``delete``
        just after (a not-found delete fires only the ``pre-``)."""
        self._feed.subscribe(callback)

    @property
    def version(self) -> int:
        """Changes on every indexed mutation (the weight-2 counter
        strictly dominates the +-1 size change); also moves when the
        tree is resized behind the index's back."""
        return 2 * self._mutations + len(self.tree)

    def obstacles_in_range(self, center: Point, radius: float) -> list[Obstacle]:
        """Obstacles intersecting the disk (filtered by MBR, refined
        against the polygon)."""
        if radius == inf:
            return [data for data, __ in self.tree.items()]
        return obstacles_in_range(self.tree, center, radius)

    def insert(self, obstacle: Obstacle) -> None:
        """Add one obstacle and bump the version."""
        self._feed.notify("pre-insert", obstacle)
        self.tree.insert(obstacle, obstacle.mbr)
        self._mutations += 1
        self._feed.notify("insert", obstacle)

    def delete(self, obstacle: Obstacle) -> bool:
        """Remove one obstacle; bumps the version when found."""
        self._feed.notify("pre-delete", obstacle)
        found = self.tree.delete(obstacle, obstacle.mbr)
        if found:
            self._mutations += 1
            self._feed.notify("delete", obstacle)
        return found

    def find(self, oid: int) -> Obstacle | None:
        """The obstacle with id ``oid``, or ``None`` (linear scan)."""
        for obstacle, __ in self.tree.items():
            if obstacle.oid == oid:
                return obstacle
        return None

    def universe(self) -> Rect | None:
        """MBR of the whole obstacle dataset (``None`` when empty)."""
        return self.tree.mbr()

    def trees(self) -> list[RStarTree]:
        """The backing R-trees (one, for a monolithic index)."""
        return [self.tree]

    def __len__(self) -> int:
        return len(self.tree)


class CompositeObstacleIndex:
    """Several obstacle datasets queried as one.

    Obstacle ids must be globally unique across the member indexes —
    :class:`repro.core.engine.ObstacleDatabase` assigns them from one
    sequence.
    """

    def __init__(self, indexes: Sequence[ObstacleIndex]) -> None:
        if not indexes:
            raise DatasetError("composite obstacle index needs >= 1 member")
        self.indexes = list(indexes)

    def subscribe(self, callback: MutationListener) -> None:
        """Register a mutation listener with every member index."""
        for index in self.indexes:
            index.subscribe(callback)

    @property
    def version(self) -> int:
        """Sum of member versions — moves whenever any member mutates."""
        return sum(idx.version for idx in self.indexes)

    def obstacles_in_range(self, center: Point, radius: float) -> list[Obstacle]:
        """Union of the members' relevant obstacles."""
        result: list[Obstacle] = []
        seen: set[int] = set()
        for index in self.indexes:
            for obs in index.obstacles_in_range(center, radius):
                if obs.oid not in seen:
                    seen.add(obs.oid)
                    result.append(obs)
        return result

    def universe(self) -> Rect | None:
        """MBR over all member datasets."""
        rects = [idx.universe() for idx in self.indexes]
        rects = [r for r in rects if r is not None]
        if not rects:
            return None
        return Rect.union_all(rects)

    def trees(self) -> list[RStarTree]:
        """The backing R-trees of every member index."""
        return [tree for idx in self.indexes for tree in idx.trees()]

    def __len__(self) -> int:
        return sum(len(idx) for idx in self.indexes)


class ShardedObstacleIndex:
    """One obstacle dataset spatially partitioned into per-shard R-trees.

    Each occupied grid cell owns a full :class:`ObstacleIndex` (its own
    versioned R-tree); an obstacle is stored in every shard its MBR
    overlaps, and retrievals dedupe by obstacle id — the same union
    semantics as :class:`CompositeObstacleIndex`, but with *spatial*
    membership, so:

    * ``obstacles_in_range`` consults only the shards whose cells
      intersect the query disk (in Hilbert key order, for buffer
      locality and determinism);
    * mutations bump only the versions of the shards they touch, and
      :meth:`version_stamp` hands the query runtime a per-shard version
      vector (:class:`~repro.runtime.sharding.ShardVersionStamp`) so
      cached visibility graphs survive mutations in shards they never
      read.

    Shards are created lazily on first insert into their cell (bumping
    ``layout_version``) and never removed — an emptied shard keeps its
    version history, which is what makes stamp comparison sound.
    """

    def __init__(
        self,
        grid: ShardGrid,
        *,
        name: str = "obstacles",
        **tree_kwargs: object,
    ) -> None:
        self.grid = grid
        self.name = name
        self._tree_kwargs = dict(tree_kwargs)
        self._shards: dict[int, ObstacleIndex] = {}
        self._layout_version = 0
        self._count = 0
        self._feed = _MutationFeed()

    def subscribe(self, callback: MutationListener) -> None:
        """Register a (weakly held) mutation listener; each
        :meth:`insert` / :meth:`delete` notifies it once before and
        once after applying (``pre-`` then plain kind — not per
        shard; a not-found delete fires only the ``pre-``)."""
        self._feed.subscribe(callback)

    # -------------------------------------------------------------- shards
    @property
    def layout_version(self) -> int:
        """Bumped whenever a new shard is created (never on mutation)."""
        return self._layout_version

    @property
    def shard_count(self) -> int:
        """Number of occupied shards."""
        return len(self._shards)

    def shard_keys(self) -> list[int]:
        """Occupied shard keys in Hilbert order."""
        return sorted(self._shards)

    def shard(self, key: int) -> ObstacleIndex:
        """The shard stored under ``key`` (raises on unoccupied cells)."""
        try:
            return self._shards[key]
        except KeyError:
            raise DatasetError(f"no shard with key {key}") from None

    def shard_version(self, key: int) -> int:
        """Version of the shard under ``key`` (0 for unoccupied cells)."""
        shard = self._shards.get(key)
        return 0 if shard is None else shard.version

    def occupied_keys_for_disk(self, center: Point, radius: float) -> list[int]:
        """Occupied shard keys whose cells intersect the disk, sorted
        in Hilbert order (the retrieval fan-out set)."""
        if radius == inf:
            return sorted(self._shards)
        grid = self.grid
        keys = {
            grid.key(cx, cy) for cx, cy in grid.cells_for_disk(center, radius)
        }
        return sorted(keys & self._shards.keys())

    def _shard_for_key(self, key: int) -> ObstacleIndex:
        shard = self._shards.get(key)
        if shard is None:
            tree = RStarTree(
                name=f"{self.name}[{key:04d}]",
                **self._tree_kwargs,  # type: ignore[arg-type]
            )
            shard = ObstacleIndex(tree)
            self._shards[key] = shard
            self._layout_version += 1
        return shard

    def keys_for_obstacle(self, obstacle: Obstacle) -> list[int]:
        """The shard keys of every cell the obstacle's MBR overlaps —
        the mutation footprint the runtime uses to reach exactly the
        cached graphs a mutation can affect."""
        grid = self.grid
        return sorted(
            {grid.key(cx, cy) for cx, cy in grid.cells_for_rect(obstacle.mbr)}
        )

    # ------------------------------------------------------------ versioning
    @property
    def version(self) -> int:
        """Global version: moves whenever *any* shard mutates.

        Kept for API parity with the monolithic sources (and for code
        paths that only need "did anything change"); the runtime
        prefers the per-shard :meth:`version_stamp`.
        """
        return sum(shard.version for shard in self._shards.values())

    def version_stamp(self, center: Point, radius: float) -> ShardVersionStamp:
        """The per-shard version vector for a graph covering the disk."""
        versions = {
            key: self._shards[key].version
            for key in self.occupied_keys_for_disk(center, radius)
        }
        return ShardVersionStamp(
            self, center, radius, versions, self._layout_version
        )

    # -------------------------------------------------------------- queries
    def obstacles_in_range(self, center: Point, radius: float) -> list[Obstacle]:
        """Obstacles intersecting the disk — fanned out only to the
        shards whose cells intersect it, deduped by obstacle id."""
        result: list[Obstacle] = []
        seen: set[int] = set()
        for key in self.occupied_keys_for_disk(center, radius):
            for obs in self._shards[key].obstacles_in_range(center, radius):
                if obs.oid not in seen:
                    seen.add(obs.oid)
                    result.append(obs)
        return result

    def find(self, oid: int) -> Obstacle | None:
        """The obstacle with id ``oid``, or ``None`` (scans shards)."""
        for key in sorted(self._shards):
            found = self._shards[key].find(oid)
            if found is not None:
                return found
        return None

    def universe(self) -> Rect | None:
        """MBR of the stored obstacles (``None`` when empty).

        This is the *data* MBR, not the (fixed) grid universe.
        """
        rects = [shard.universe() for shard in self._shards.values()]
        rects = [r for r in rects if r is not None]
        return Rect.union_all(rects) if rects else None

    def trees(self) -> list[RStarTree]:
        """The per-shard R-trees, in Hilbert key order."""
        return [self._shards[key].tree for key in sorted(self._shards)]

    def __len__(self) -> int:
        """Number of distinct stored obstacles (spanning obstacles are
        replicated across shards but counted once)."""
        return self._count

    # ------------------------------------------------------------- mutation
    def insert(self, obstacle: Obstacle) -> None:
        """Insert one obstacle into every shard its MBR overlaps."""
        self._feed.notify("pre-insert", obstacle)
        for key in self.keys_for_obstacle(obstacle):
            self._shard_for_key(key).insert(obstacle)
        self._count += 1
        self._feed.notify("insert", obstacle)

    def delete(self, obstacle: Obstacle) -> bool:
        """Delete one obstacle from the shards holding it."""
        self._feed.notify("pre-delete", obstacle)
        found = False
        for key in self.keys_for_obstacle(obstacle):
            shard = self._shards.get(key)
            if shard is not None and shard.delete(obstacle):
                found = True
        if found:
            self._count -= 1
            self._feed.notify("delete", obstacle)
        return found

    @classmethod
    def restore(
        cls,
        grid: ShardGrid,
        *,
        name: str,
        shards: dict[int, ObstacleIndex],
        layout_version: int,
        count: int,
        **tree_kwargs: object,
    ) -> "ShardedObstacleIndex":
        """Snapshot-restore hook: reassemble a sharded index from its
        parts.

        ``shards`` maps shard keys to fully restored per-shard
        :class:`ObstacleIndex` instances; ``layout_version`` and
        ``count`` are taken verbatim (they are not derivable from the
        shard dict — emptied shards keep their version history, and
        spanning obstacles are replicated).  A fresh mutation feed is
        created; subscribers re-attach when the runtime context is
        rebuilt around the restored source.
        """
        index = cls(grid, name=name, **tree_kwargs)
        index._shards = dict(shards)
        index._layout_version = layout_version
        index._count = count
        return index

    def __repr__(self) -> str:
        return (
            f"ShardedObstacleIndex({self._count} obstacles, "
            f"{len(self._shards)}/{self.grid.cell_count} shards, "
            f"order={self.grid.order})"
        )


def build_obstacle_index(
    obstacles: Iterable[Obstacle],
    *,
    bulk: bool = True,
    name: str = "obstacles",
    **tree_kwargs: object,
) -> ObstacleIndex:
    """Index an obstacle collection with an R*-tree.

    ``bulk=True`` uses STR packing (fast benchmark setup); otherwise
    obstacles are inserted one by one through the full R* insert path.
    """
    from repro.index.bulk import str_pack

    tree = RStarTree(name=name, **tree_kwargs)  # type: ignore[arg-type]
    items = [(obs, obs.mbr) for obs in obstacles]
    if bulk:
        str_pack(tree, items)
    else:
        for obs, rect in items:
            tree.insert(obs, rect)
    return ObstacleIndex(tree)


def build_sharded_obstacle_index(
    obstacles: Iterable[Obstacle],
    *,
    shards: int = 16,
    universe: Rect | None = None,
    bulk: bool = True,
    name: str = "obstacles",
    **tree_kwargs: object,
) -> ShardedObstacleIndex:
    """Index an obstacle collection into a spatially sharded store.

    ``shards`` is a target count — the grid is the tightest power-of-two
    square with at least that many cells.  ``universe`` fixes the grid
    extent (defaults to the collection's MBR; later inserts outside it
    are clamped into the rim shards).  ``bulk=True`` STR-packs each
    shard's tree.
    """
    from repro.index.bulk import str_pack

    items = list(obstacles)
    if universe is None:
        universe = (
            Rect.union_all([obs.mbr for obs in items])
            if items
            else Rect(0.0, 0.0, 1.0, 1.0)
        )
    grid = ShardGrid.for_shards(universe, shards)
    index = ShardedObstacleIndex(grid, name=name, **tree_kwargs)
    if not bulk:
        for obs in items:
            index.insert(obs)
        return index
    per_shard: dict[int, list[Obstacle]] = {}
    for obs in items:
        for key in index.keys_for_obstacle(obs):
            per_shard.setdefault(key, []).append(obs)
    for key in sorted(per_shard):
        shard = index._shard_for_key(key)
        str_pack(shard.tree, [(obs, obs.mbr) for obs in per_shard[key]])
    index._count = len(items)
    return index
