"""Obstacle distance semi-join.

Paper Sec. 2.1 lists the distance semi-join among the classical query
types: "return for each point s in S its nearest neighbour t in T",
and notes it can be answered either (i) by performing a NN query in T
for each object in S, or (ii) by outputting closest pairs incrementally
until the NN for each entity in S is retrieved.  Both strategies are
implemented by the shared runtime skeleton
(:func:`repro.runtime.queries.metric_semijoin`) under the obstructed
metric:

* ``strategy="nn"`` — one ONN query per s (simple; good when |S| is
  small or the pairs are far apart);
* ``strategy="cp"`` — consume the incremental obstacle closest-pair
  stream (iOCP, Fig. 12) and keep the first pair seen for each s
  (good when nearest neighbours are found early in the stream).

Either way *one* :class:`~repro.runtime.context.QueryContext` spans
the whole semi-join, so repeated source points are answered from the
persistent graph cache instead of re-deriving their visibility graphs
(the seed rebuilt all machinery per ``s``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.distance import ObstacleSource
from repro.geometry.point import Point
from repro.index.rstar import RStarTree
from repro.runtime.metric import resolve_metric
from repro.runtime.queries import metric_semijoin

if TYPE_CHECKING:
    from repro.runtime.context import QueryContext


def obstacle_semijoin(
    tree_s: RStarTree,
    tree_t: RStarTree,
    obstacle_source: ObstacleSource,
    *,
    strategy: str = "cp",
    context: "QueryContext | None" = None,
) -> dict[Point, tuple[Point, float]]:
    """For each ``s`` in S, its obstructed nearest neighbour in T.

    Returns ``{s: (t, d_O(s, t))}``.  Duplicate coordinates in S
    collapse onto one key (points are value-typed).  Empty T yields an
    empty mapping.
    """
    metric = resolve_metric(obstacle_source, context)
    return metric_semijoin(tree_s, tree_t, metric, strategy=strategy)
