"""Obstacle distance semi-join.

Paper Sec. 2.1 lists the distance semi-join among the classical query
types: "return for each point s in S its nearest neighbour t in T",
and notes it can be answered either (i) by performing a NN query in T
for each object in S, or (ii) by outputting closest pairs incrementally
until the NN for each entity in S is retrieved.  Both strategies are
implemented here under the obstructed metric:

* ``strategy="nn"`` — one ONN query per s (simple; good when |S| is
  small or the pairs are far apart);
* ``strategy="cp"`` — consume the incremental obstacle closest-pair
  stream (iOCP, Fig. 12) and keep the first pair seen for each s
  (good when nearest neighbours are found early in the stream).
"""

from __future__ import annotations

from repro.core.closest import iter_obstacle_closest_pairs
from repro.core.distance import ObstacleSource
from repro.core.nearest import obstacle_nearest
from repro.errors import QueryError
from repro.geometry.point import Point
from repro.index.rstar import RStarTree


def obstacle_semijoin(
    tree_s: RStarTree,
    tree_t: RStarTree,
    obstacle_source: ObstacleSource,
    *,
    strategy: str = "cp",
) -> dict[Point, tuple[Point, float]]:
    """For each ``s`` in S, its obstructed nearest neighbour in T.

    Returns ``{s: (t, d_O(s, t))}``.  Duplicate coordinates in S
    collapse onto one key (points are value-typed).  Empty T yields an
    empty mapping.
    """
    if strategy not in ("nn", "cp"):
        raise QueryError(f"unknown semijoin strategy {strategy!r}")
    if len(tree_s) == 0 or len(tree_t) == 0:
        return {}
    if strategy == "nn":
        return _semijoin_by_nn(tree_s, tree_t, obstacle_source)
    return _semijoin_by_cp(tree_s, tree_t, obstacle_source)


def _semijoin_by_nn(
    tree_s: RStarTree,
    tree_t: RStarTree,
    obstacle_source: ObstacleSource,
) -> dict[Point, tuple[Point, float]]:
    result: dict[Point, tuple[Point, float]] = {}
    for s, __ in tree_s.items():
        if s in result:
            continue
        nn = obstacle_nearest(tree_t, obstacle_source, s, 1)
        if nn:
            result[s] = nn[0]
    return result


def _semijoin_by_cp(
    tree_s: RStarTree,
    tree_t: RStarTree,
    obstacle_source: ObstacleSource,
) -> dict[Point, tuple[Point, float]]:
    remaining = {s for s, __ in tree_s.items()}
    result: dict[Point, tuple[Point, float]] = {}
    for s, t, d in iter_obstacle_closest_pairs(tree_s, tree_t, obstacle_source):
        if s in remaining:
            remaining.discard(s)
            result[s] = (t, d)
            if not remaining:
                break
    return result
