"""The paper's contribution: obstructed spatial query processing.

All four query types share the same skeleton: a Euclidean query on the
R-trees produces a candidate superset (by the Euclidean lower-bound
property ``d_E <= d_O``), and local visibility graphs built on-line
from only the relevant obstacles eliminate the false hits.

* :func:`obstacle_range` — OR, paper Fig. 5
* :func:`obstacle_nearest` / :func:`iter_obstacle_nearest` — ONN, Fig. 9
* :func:`obstacle_distance_join` — ODJ, Fig. 10
* :func:`obstacle_closest_pairs` / :func:`iter_obstacle_closest_pairs`
  — OCP / iOCP, Figs. 11-12
* :func:`compute_obstructed_distance` — the iterative distance
  evaluation of Fig. 8
* :class:`ObstacleDatabase` — the user-facing facade
"""

from repro.core.distance import ObstructedDistanceComputer, compute_obstructed_distance
from repro.core.source import (
    CompositeObstacleIndex,
    ObstacleIndex,
    ShardedObstacleIndex,
    build_obstacle_index,
    build_sharded_obstacle_index,
)
from repro.core.range import obstacle_range
from repro.core.nearest import iter_obstacle_nearest, obstacle_nearest
from repro.core.join import obstacle_distance_join
from repro.core.closest import iter_obstacle_closest_pairs, obstacle_closest_pairs
from repro.core.semijoin import obstacle_semijoin
from repro.core.engine import ObstacleDatabase

__all__ = [
    "ObstructedDistanceComputer",
    "compute_obstructed_distance",
    "ObstacleIndex",
    "CompositeObstacleIndex",
    "ShardedObstacleIndex",
    "build_obstacle_index",
    "build_sharded_obstacle_index",
    "obstacle_range",
    "obstacle_nearest",
    "iter_obstacle_nearest",
    "obstacle_distance_join",
    "obstacle_closest_pairs",
    "iter_obstacle_closest_pairs",
    "obstacle_semijoin",
    "ObstacleDatabase",
]
