"""Obstacle nearest-neighbour query — ONN (paper Sec. 4, Fig. 9).

The k Euclidean NNs seed the result; their largest obstructed distance
is a shrinking threshold ``d_Emax``.  Further Euclidean neighbours are
retrieved *incrementally* and evaluated until the next one's Euclidean
distance exceeds ``d_Emax`` — at that point no unseen entity can beat
the current k-th obstructed distance (Euclidean lower bound).

Obstructed distances share one growing local graph around the query
point (the paper reuses ``G'`` across computations); candidates are
evaluated against a cached distance field from ``q``
(:class:`repro.core.distance.SourceDistanceField`) rather than by
per-candidate graph surgery, and losing candidates abort their Fig. 8
iteration early once their provisional lower bound exceeds the current
threshold.

Both entry points are the shared runtime skeletons
(:func:`repro.runtime.queries.metric_nearest` /
:func:`~repro.runtime.queries.iter_metric_nearest`) parameterized with
the obstructed metric; pass a
:class:`~repro.runtime.context.QueryContext` to reuse cached graphs
across queries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.core.distance import ObstacleSource
from repro.geometry.point import Point
from repro.index.rstar import RStarTree
from repro.runtime.metric import resolve_metric
from repro.runtime.queries import iter_metric_nearest, metric_nearest

if TYPE_CHECKING:
    from repro.runtime.context import QueryContext


def obstacle_nearest(
    entity_tree: RStarTree,
    obstacle_source: ObstacleSource,
    q: Point,
    k: int,
    *,
    prune_bound: bool = True,
    context: "QueryContext | None" = None,
) -> list[tuple[Point, float]]:
    """The ``k`` entities with smallest obstructed distance from ``q``.

    Returns ``(entity, d_O)`` pairs sorted by obstructed distance;
    fewer than ``k`` when the dataset is smaller.  Unreachable entities
    (sealed off by obstacles) have distance ``inf`` and lose to any
    reachable one.  ``prune_bound=False`` disables the early-exit
    optimisation (every candidate's distance is evaluated exactly, as
    in the paper's verbatim Fig. 9).
    """
    metric = resolve_metric(obstacle_source, context)
    return metric_nearest(entity_tree, metric, q, k, prune_bound=prune_bound)


def iter_obstacle_nearest(
    entity_tree: RStarTree,
    obstacle_source: ObstacleSource,
    q: Point,
    *,
    context: "QueryContext | None" = None,
) -> Iterator[tuple[Point, float]]:
    """Incremental ONN: yields ``(entity, d_O)`` in ascending obstructed
    distance, without a predefined ``k``.

    An entity whose obstructed distance is <= the Euclidean distance of
    the most recently retrieved Euclidean neighbour can be emitted
    immediately: later neighbours have larger Euclidean — hence larger
    obstructed — distances.
    """
    metric = resolve_metric(obstacle_source, context)
    return iter_metric_nearest(entity_tree, metric, q)
