"""Obstacle nearest-neighbour query — ONN (paper Sec. 4, Fig. 9).

The k Euclidean NNs seed the result; their largest obstructed distance
is a shrinking threshold ``d_Emax``.  Further Euclidean neighbours are
retrieved *incrementally* and evaluated until the next one's Euclidean
distance exceeds ``d_Emax`` — at that point no unseen entity can beat
the current k-th obstructed distance (Euclidean lower bound).

Obstructed distances share one growing local graph around the query
point (the paper reuses ``G'`` across computations); candidates are
evaluated against a cached distance field from ``q``
(:class:`repro.core.distance.SourceDistanceField`) rather than by
per-candidate graph surgery, and losing candidates abort their Fig. 8
iteration early once their provisional lower bound exceeds the current
threshold.

The incremental variant (:func:`iter_obstacle_nearest`) applies the
iOCP methodology the paper sketches at the end of Sec. 6: an entity can
be emitted as soon as its obstructed distance is no larger than the
Euclidean distance of the latest retrieved neighbour.
"""

from __future__ import annotations

import heapq
from bisect import insort
from math import inf
from typing import Iterator

from repro.core.distance import ObstacleSource, SourceDistanceField
from repro.errors import QueryError
from repro.euclidean.nearest import IncrementalNearestNeighbors
from repro.geometry.point import Point
from repro.index.rstar import RStarTree
from repro.visibility.graph import VisibilityGraph


def obstacle_nearest(
    entity_tree: RStarTree,
    obstacle_source: ObstacleSource,
    q: Point,
    k: int,
    *,
    prune_bound: bool = True,
) -> list[tuple[Point, float]]:
    """The ``k`` entities with smallest obstructed distance from ``q``.

    Returns ``(entity, d_O)`` pairs sorted by obstructed distance;
    fewer than ``k`` when the dataset is smaller.  Unreachable entities
    (sealed off by obstacles) have distance ``inf`` and lose to any
    reachable one.  ``prune_bound=False`` disables the early-exit
    optimisation (every candidate's distance is evaluated exactly, as
    in the paper's verbatim Fig. 9).
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    stream = IncrementalNearestNeighbors(entity_tree, q)
    seeds: list[tuple[Point, float]] = []
    for p, d_e in stream:
        seeds.append((p, d_e))
        if len(seeds) == k:
            break
    if not seeds:
        return []
    # Initial local graph: obstacles within the k-th Euclidean distance
    # around q (paper Fig. 9).
    d_k = seeds[-1][1]
    relevant = obstacle_source.obstacles_in_range(q, d_k)
    graph = VisibilityGraph.build([q], relevant)
    field = SourceDistanceField(graph, q, obstacle_source)
    result: list[tuple[float, Point]] = []
    for p, __ in seeds:
        insort(result, (field.distance_to(p), p))
    d_emax = result[k - 1][0] if len(result) >= k else inf
    for p, d_e in stream:
        if d_e > d_emax:
            break
        bound = d_emax if prune_bound else inf
        d_o = field.distance_to(p, bound=bound)
        if d_o < result[k - 1][0]:
            result.pop()
            insort(result, (d_o, p))
            d_emax = result[k - 1][0]
    return [(p, d_o) for d_o, p in result[:k]]


def iter_obstacle_nearest(
    entity_tree: RStarTree,
    obstacle_source: ObstacleSource,
    q: Point,
) -> Iterator[tuple[Point, float]]:
    """Incremental ONN: yields ``(entity, d_O)`` in ascending obstructed
    distance, without a predefined ``k``.

    An entity whose obstructed distance is <= the Euclidean distance of
    the most recently retrieved Euclidean neighbour can be emitted
    immediately: later neighbours have larger Euclidean — hence larger
    obstructed — distances.
    """
    stream = IncrementalNearestNeighbors(entity_tree, q)
    field: SourceDistanceField | None = None
    hold: list[tuple[float, int, Point]] = []
    seq = 0
    for p, d_e in stream:
        while hold and hold[0][0] <= d_e:
            d_o, __, ready = heapq.heappop(hold)
            yield ready, d_o
        if field is None:
            graph = VisibilityGraph.build(
                [q], obstacle_source.obstacles_in_range(q, d_e)
            )
            field = SourceDistanceField(graph, q, obstacle_source)
        heapq.heappush(hold, (field.distance_to(p), seq, p))
        seq += 1
    while hold:
        d_o, __, ready = heapq.heappop(hold)
        yield ready, d_o
