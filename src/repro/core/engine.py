"""`ObstacleDatabase` — the user-facing facade.

Owns the obstacle dataset(s) and any number of named entity datasets,
all indexed by R*-trees with counted, buffered page accesses, and
exposes every query type of the paper::

    db = ObstacleDatabase(obstacles)
    db.add_entity_set("restaurants", points)
    db.range("restaurants", q, e)              # OR   (Fig. 5)
    db.nearest("restaurants", q, k)            # ONN  (Fig. 9)
    db.inearest("restaurants", q)              # incremental ONN
    db.distance_join("homes", "shops", e)      # ODJ  (Fig. 10)
    db.closest_pairs("homes", "shops", k)      # OCP  (Fig. 11)
    db.iclosest_pairs("homes", "shops")        # iOCP (Fig. 12)
    db.semijoin("homes", "shops")              # distance semi-join (Sec. 2.1)
    db.obstructed_distance(a, b)               # Fig. 8

Every query runs through one persistent
:class:`~repro.runtime.context.QueryContext` owned by the database:
visibility graphs survive in a versioned LRU cache across queries, and
the dynamic obstacle API (:meth:`insert_obstacle` /
:meth:`delete_obstacle`) bumps the obstacle-set version so stale
graphs are discarded lazily at their next lookup.  Batch entry points
(:meth:`batch_nearest`, :meth:`batch_range`, :meth:`batch_distance`)
amortize the context across whole workloads, and fan out over a worker
pool when asked (``workers=`` / ``REPRO_BATCH_WORKERS``) — either a
per-batch fork pool or, with ``pool="persistent"`` /
``REPRO_BATCH_POOL=persistent``, the long-lived snapshot-warm-started
:meth:`serving_pool` (shut down via :meth:`close` or the context
manager).  Obstacle storage is either
one monolithic R*-tree per set or, with ``shards=N``, a spatially
sharded store whose mutations invalidate cached graphs per shard.
"""

from __future__ import annotations

import os
import weakref
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.closest import iter_obstacle_closest_pairs, obstacle_closest_pairs
from repro.core.join import obstacle_distance_join
from repro.core.nearest import iter_obstacle_nearest, obstacle_nearest
from repro.core.range import obstacle_range
from repro.core.semijoin import obstacle_semijoin
from repro.core.source import (
    CompositeObstacleIndex,
    ObstacleIndex,
    ShardedObstacleIndex,
    build_sharded_obstacle_index,
)
from repro.errors import DatasetError, QueryError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.index.bulk import str_pack
from repro.index.rstar import RStarTree
from repro.model import Obstacle
from repro.obs import MetricsRegistry, TRACER
from repro.runtime.batch import batch_distance, batch_nearest, batch_range
from repro.runtime.context import QueryContext
from repro.runtime.executor import resolve_pool_kind, resolve_workers
from repro.runtime.metric import ObstructedMetric
from repro.runtime.policy import CachePolicy
from repro.runtime.stats import RuntimeStats
from repro.visibility.kernel.backend import VisibilityBackend, resolve_backend

ObstacleLike = Obstacle | Polygon | Rect
PointLike = Point | tuple[float, float]


class ObstacleDatabase:
    """A spatial database answering queries under the obstructed metric.

    Parameters
    ----------
    obstacles:
        The primary obstacle dataset; rectangles and polygons are
        wrapped into :class:`~repro.model.Obstacle` records with ids
        assigned from one global sequence.
    bulk:
        Build trees by STR packing (default) or by repeated insertion.
    page_size, buffer_fraction:
        Simulated page layout and LRU sizing for every tree (paper:
        4 KB pages, 10 % buffers).
    graph_cache_size:
        LRU capacity of the shared visibility-graph cache.
    graph_cache_snap:
        Spatial-key quantum of the graph cache.  ``0`` keys cached
        graphs by exact expansion centre (the historical behaviour); a
        positive value snaps centres to a grid of that cell size, so
        near-duplicate centres (moving queries, dense batches) share
        one coverage-guarded graph.  ``None`` (default) reads the
        ``REPRO_CACHE_SNAP`` environment variable, else ``0``.
    shards:
        ``None`` (default) stores each obstacle set in one monolithic
        R-tree.  An integer switches to spatially sharded storage
        (:class:`~repro.core.source.ShardedObstacleIndex`): obstacles
        are partitioned over a Hilbert-keyed grid of at least that
        many cells, retrievals fan out only to the shards intersecting
        the query disk, and dynamic obstacle updates invalidate cached
        visibility graphs per shard instead of globally.
    backend:
        The visibility backend used for every sweep (``"python-sweep"``,
        ``"numpy-kernel"``, ``"naive"``, or a
        :class:`~repro.visibility.kernel.backend.VisibilityBackend`
        instance).  ``None`` auto-picks — the
        ``REPRO_VISIBILITY_BACKEND`` environment variable when set,
        else the numpy kernel when numpy is importable.
    cache_policy:
        The graph-cache tuning policy (``"static"``, ``"adaptive"``,
        or a :class:`~repro.runtime.policy.CachePolicy` instance).
        ``None`` (default) reads the ``REPRO_CACHE_POLICY``
        environment variable, else static.  The adaptive policy
        observes the live centre stream and retunes the snap quantum,
        LRU capacity and guest admission online; answers are
        bit-identical under any policy.
    durable:
        A write-ahead mutation journal path
        (:mod:`repro.persist.journal`).  Every obstacle/entity
        mutation is appended and fsynced *before* it is applied, so
        after a crash ``ObstacleDatabase.load(base, durable=path)``
        replays the journal over the base snapshot and answers
        bit-identically to a process that never crashed.  ``None``
        (default) reads ``REPRO_JOURNAL`` (a directory there
        allocates a unique journal file per database); unset means
        not durable.  :meth:`save` anchors the journal to the saved
        base snapshot and truncates it; once anchored, the journal is
        auto-folded into the base when it outgrows the
        ``REPRO_JOURNAL_COMPACT_BYTES`` / ``_RATIO`` triggers (or
        explicitly via :meth:`compact`).
    """

    def __init__(
        self,
        obstacles: Iterable[ObstacleLike],
        *,
        bulk: bool = True,
        page_size: int = 4096,
        buffer_fraction: float = 0.1,
        max_entries: int | None = None,
        min_entries: int | None = None,
        graph_cache_size: int = 64,
        graph_cache_snap: float | None = None,
        shards: int | None = None,
        backend: "str | VisibilityBackend | None" = None,
        cache_policy: "str | CachePolicy | None" = None,
        durable: "str | os.PathLike[str] | None" = None,
    ) -> None:
        if shards is not None and shards < 1:
            raise DatasetError(f"shards must be >= 1, got {shards}")
        if graph_cache_snap is None:
            raw_snap = os.environ.get("REPRO_CACHE_SNAP", "0")
            try:
                graph_cache_snap = float(raw_snap)
            except ValueError:
                raise DatasetError(
                    f"REPRO_CACHE_SNAP must be a number, got {raw_snap!r}"
                ) from None
        if graph_cache_snap < 0:
            raise DatasetError(
                f"graph_cache_snap must be >= 0, got {graph_cache_snap}"
            )
        self._graph_cache_snap = graph_cache_snap
        self._shards = shards
        self._bulk = bulk
        self._tree_kwargs = dict(
            page_size=page_size,
            buffer_fraction=buffer_fraction,
            max_entries=max_entries,
            min_entries=min_entries,
        )
        self._next_oid = 0
        self._graph_cache_size = graph_cache_size
        self._cache_policy = cache_policy
        self._runtime_stats = RuntimeStats()
        self._backend = resolve_backend(backend, stats=self._runtime_stats)
        self._entity_trees: dict[str, RStarTree] = {}
        self._obstacle_indexes: dict[
            str, ObstacleIndex | ShardedObstacleIndex
        ] = {}
        self._context: QueryContext | None = None
        self._serving_pool = None
        self._pool_finalizer = None
        self._metrics: MetricsRegistry | None = None
        self._journal = None
        self._base_path: str | None = None
        self._compact_bytes = 0
        self._compact_ratio = 0.0
        self.add_obstacle_set("obstacles", obstacles)
        from repro.persist.journal import MutationJournal, resolve_journal_path

        journal_path = resolve_journal_path(durable)
        if journal_path is not None:
            self._attach_journal(MutationJournal.create(journal_path))

    # ------------------------------------------------------------ datasets
    def add_obstacle_set(self, name: str, obstacles: Iterable[ObstacleLike]) -> None:
        """Register an additional obstacle dataset under ``name``.

        The paper notes the extension to multiple obstacle datasets is
        straightforward: all registered sets obstruct movement.
        Registering a set swaps the context's obstacle source, dropping
        all cached visibility graphs.
        """
        if name in self._obstacle_indexes:
            raise DatasetError(f"obstacle set {name!r} already exists")
        records = [self._coerce_obstacle(o) for o in obstacles]
        if self._shards is not None:
            self._obstacle_indexes[name] = build_sharded_obstacle_index(
                records,
                shards=self._shards,
                bulk=self._bulk,
                name=f"obstacles:{name}",
                **self._tree_kwargs,
            )
        else:
            tree = RStarTree(name=f"obstacles:{name}", **self._tree_kwargs)
            items = [(obs, obs.mbr) for obs in records]
            if self._bulk:
                str_pack(tree, items)
            else:
                for obs, rect in items:
                    tree.insert(obs, rect)
            self._obstacle_indexes[name] = ObstacleIndex(tree)
        self._rebuild_context()
        self._invalidate_pool()
        self._journal_note_shape_change()

    def add_entity_set(self, name: str, points: Iterable[PointLike]) -> None:
        """Register a named entity dataset (points of interest)."""
        if name in self._entity_trees:
            raise DatasetError(f"entity set {name!r} already exists")
        pts = [self._coerce_point(p) for p in points]
        tree = RStarTree(name=f"entities:{name}", **self._tree_kwargs)
        items = [(p, Rect.from_point(p)) for p in pts]
        if self._bulk:
            str_pack(tree, items)
        else:
            for p, rect in items:
                tree.insert(p, rect)
        self._entity_trees[name] = tree
        self._invalidate_pool()
        self._journal_note_shape_change()

    def insert_entity(self, name: str, point: PointLike) -> None:
        """Insert one entity into an existing dataset."""
        p = self._coerce_point(point)
        tree = self.entity_tree(name)  # resolve (and fail) pre-journal
        if self._journal is not None:
            from repro.persist.journal import entity_record

            self._journal_append(entity_record("insert", name, p))
        tree.insert(p, Rect.from_point(p))
        if self._serving_pool is not None:
            self._serving_pool.note_entity("insert", name, p)
        self._maybe_compact()

    def delete_entity(self, name: str, point: PointLike) -> bool:
        """Delete one entity; returns ``True`` when found."""
        p = self._coerce_point(point)
        tree = self.entity_tree(name)
        if self._journal is not None:
            from repro.persist.journal import entity_record

            self._journal_append(entity_record("delete", name, p))
        found = tree.delete(p, Rect.from_point(p))
        if found and self._serving_pool is not None:
            self._serving_pool.note_entity("delete", name, p)
        self._maybe_compact()
        return found

    # ------------------------------------------------- dynamic obstacles
    def insert_obstacle(
        self, obstacle: ObstacleLike, *, set_name: str = "obstacles"
    ) -> Obstacle:
        """Insert one obstacle into an existing obstacle set.

        Returns the stored :class:`~repro.model.Obstacle` record (with
        its database-assigned id), which can later be passed to
        :meth:`delete_obstacle`.  The mutation is routed repair-first:
        cached visibility graphs whose coverage disk the new obstacle
        intersects are patched in place (one ``add_obstacle``), others
        get a version-stamp refresh; a graph is rebuilt only when
        repair is impossible (rebuild-fallback).  With sharded storage
        (``shards=``) only graphs registered under the shards the
        obstacle overlaps are even visited — queries never consult a
        stale graph either way.
        """
        record = self._coerce_obstacle(obstacle)
        index = self._obstacle_index_named(set_name)
        if self._journal is not None:
            from repro.persist.journal import obstacle_record

            self._journal_append(obstacle_record("insert", set_name, record))
        index.insert(record)
        self._maybe_compact()
        return record

    def delete_obstacle(
        self, obstacle: Obstacle | int, *, set_name: str = "obstacles"
    ) -> bool:
        """Delete one obstacle (by record or by id) from an obstacle set.

        Returns ``True`` when found.  Like :meth:`insert_obstacle` the
        delete is repair-first: affected cached graphs are patched by
        :meth:`~repro.visibility.graph.VisibilityGraph.remove_obstacle`
        (a local re-sweep of the obstacle's visibility shadow) instead
        of being dropped for a from-scratch rebuild.
        """
        index = self._obstacle_index_named(set_name)
        if isinstance(obstacle, int):
            record = index.find(obstacle)
            if record is None:
                return False
        else:
            record = obstacle
        if self._journal is not None:
            from repro.persist.journal import obstacle_record

            self._journal_append(obstacle_record("delete", set_name, record))
        found = index.delete(record)
        self._maybe_compact()
        return found

    def _obstacle_index_named(
        self, name: str
    ) -> ObstacleIndex | ShardedObstacleIndex:
        try:
            return self._obstacle_indexes[name]
        except KeyError:
            raise DatasetError(f"unknown obstacle set {name!r}") from None

    # -------------------------------------------------------------- access
    def entity_tree(self, name: str) -> RStarTree:
        """The R*-tree indexing entity set ``name``."""
        try:
            return self._entity_trees[name]
        except KeyError:
            raise DatasetError(f"unknown entity set {name!r}") from None

    @property
    def obstacle_index(
        self,
    ) -> ObstacleIndex | CompositeObstacleIndex | ShardedObstacleIndex:
        """The (possibly composite or sharded) obstacle source."""
        return self._context.source  # type: ignore[union-attr,return-value]

    @property
    def obstacle_tree(self) -> RStarTree:
        """The primary obstacle R*-tree (monolithic storage only)."""
        index = self._obstacle_indexes["obstacles"]
        if isinstance(index, ShardedObstacleIndex):
            raise DatasetError(
                "sharded obstacle storage has no single primary tree; "
                "use obstacle_index.trees() or obstacle_index.shard(key)"
            )
        return index.tree

    @property
    def context(self) -> QueryContext:
        """The persistent query runtime shared by every query."""
        assert self._context is not None
        return self._context

    @property
    def cache_policy(self) -> str:
        """The active cache policy's name (``"static"``/``"adaptive"``)
        — what a worker process must be told to resolve the same kind."""
        return self.context.policy.name

    def universe(self) -> Rect | None:
        """MBR over obstacles and all entity sets."""
        rects = [idx.universe() for idx in self._obstacle_indexes.values()]
        rects += [t.mbr() for t in self._entity_trees.values()]
        rects = [r for r in rects if r is not None]
        return Rect.union_all(rects) if rects else None

    def _rebuild_context(self) -> None:
        indexes = list(self._obstacle_indexes.values())
        source = indexes[0] if len(indexes) == 1 else CompositeObstacleIndex(indexes)
        self._context = QueryContext(
            source,
            cache_size=self._graph_cache_size,
            snap=self._graph_cache_snap,
            stats=self._runtime_stats,
            backend=self._backend,
            policy=self._cache_policy,
        )

    # --------------------------------------------------------- serving pool
    def serving_pool(self, workers: int | None = None):
        """The persistent warm-started worker pool serving this database.

        Created lazily (snapshotting the current state so workers warm
        start); reused across batches until :meth:`close` or a worker
        count change.  The batch methods engage it via
        ``pool="persistent"`` or ``REPRO_BATCH_POOL=persistent``;
        callers wanting direct pool batches can use the returned
        :class:`~repro.serve.pool.PersistentWorkerPool` themselves.
        """
        from repro.serve.pool import PersistentWorkerPool

        count = resolve_workers(workers)
        if count < 2:
            raise QueryError(
                f"a serving pool needs >= 2 workers, got {count} "
                f"(pass workers= or set REPRO_BATCH_WORKERS)"
            )
        pool = self._serving_pool
        if pool is not None and not pool._shut and pool.workers == count:
            return pool
        if pool is not None:
            pool.shutdown()
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
        pool = PersistentWorkerPool(self, count)
        self._serving_pool = pool
        # The pool holds this database weakly, so the finalizer fires
        # when the database is collected and reaps the worker processes.
        self._pool_finalizer = weakref.finalize(
            self, PersistentWorkerPool.shutdown, pool
        )
        return pool

    def _invalidate_pool(self) -> None:
        pool = getattr(self, "_serving_pool", None)
        if pool is not None:
            pool.invalidate()

    def _pool_for(self, pool: str | None, workers: int | None):
        """The (pool, effective_workers) pair the batch methods route
        through: the persistent pool when selected and parallel, else
        ``None`` (per-batch fork/thread pool or sequential)."""
        count = resolve_workers(workers)
        if count >= 2 and resolve_pool_kind(pool) == "persistent":
            return self.serving_pool(count), count
        return None, count

    def close(self) -> None:
        """Release serving resources (the persistent worker pool).

        Idempotent; the database remains fully usable for library
        calls afterwards — a later ``pool="persistent"`` batch simply
        respawns the pool from a fresh snapshot.
        """
        pool = getattr(self, "_serving_pool", None)
        if pool is not None:
            pool.shutdown()
            self._serving_pool = None
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None

    def __enter__(self) -> "ObstacleDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------- persistence
    def save(
        self,
        path: "str | os.PathLike[str]",
        *,
        dataset_refs: "Mapping[str, str | os.PathLike[str]] | None" = None,
        include_cache: bool | None = None,
    ) -> None:
        """Write a page-backed snapshot of this database to ``path``.

        The snapshot captures every R*-tree node-per-page (page ids,
        buffer residency and access counters included), every obstacle
        set (monolithic or sharded, with per-shard versions and grid
        layout), and — unless ``include_cache=False`` (default from
        ``REPRO_SNAPSHOT_CACHE``) — every cached visibility graph with
        its coverage and version stamp, so :meth:`load` warm-starts.
        ``dataset_refs`` records source dataset files by content hash;
        a later load verifies them (hash, not mtime) and refuses drift.

        On a durable database (``durable=``) a successful save also
        *anchors* the journal: ``path`` becomes the base snapshot the
        journal folds into, and the journal is truncated — every
        journaled mutation is now inside the base.
        """
        from repro.persist.store import save_database

        save_database(
            self, path, dataset_refs=dataset_refs, include_cache=include_cache
        )
        if self._journal is not None:
            self._journal.reset()
            self._base_path = os.fspath(path)

    @classmethod
    def load(
        cls,
        path: "str | os.PathLike[str]",
        *,
        backend: "str | VisibilityBackend | None" = None,
        cache_policy: "str | CachePolicy | None" = None,
        durable: "str | os.PathLike[str] | None" = None,
    ) -> "ObstacleDatabase":
        """Restore a database saved by :meth:`save`.

        The restored database is observationally identical to the
        saved one — bit-identical query answers and identical simulated
        page-miss counts on any access sequence — and its runtime is
        warm: restored cache entries are re-admitted under their
        spatial keys and shard registrations, and the mutation feed is
        re-subscribed, so post-load mutations still route repair-first.
        Corrupt, truncated or future-version files raise
        :class:`~repro.errors.DatasetError` naming the path and offset,
        without constructing any partial database.

        ``durable`` names the mutation journal written ahead of the
        base snapshot (crash recovery): its durable record prefix is
        replayed over the restored state — a torn tail from a mid-append
        crash is truncated away, mid-record corruption raises
        :class:`~repro.errors.DatasetError` naming path and offset —
        and the journal stays attached, anchored to ``path``, so the
        recovered database keeps journaling.  Like the constructor,
        ``None`` falls back to ``REPRO_JOURNAL``.
        """
        from repro.persist.store import load_database

        return load_database(
            path, backend=backend, cache_policy=cache_policy, durable=durable
        )

    # ------------------------------------------------------------- journal
    @property
    def journal(self):
        """The attached :class:`~repro.persist.journal.MutationJournal`
        (``None`` when the database is not durable)."""
        return self._journal

    def _attach_journal(self, journal, *, base_path: str | None = None) -> None:
        """Wire an open journal to this database (constructor or
        post-replay from :func:`~repro.persist.store.load_database`)."""
        from repro.persist.journal import compaction_thresholds

        journal.stats = self._runtime_stats
        self._journal = journal
        self._base_path = base_path
        self._compact_bytes, self._compact_ratio = compaction_thresholds()

    def _journal_append(self, record) -> None:
        with TRACER.span(
            "journal.append", scope=record.scope, op=record.op
        ):
            self._journal.append(record)

    def _journal_note_shape_change(self) -> None:
        """A dataset was added: re-anchor the journal.

        Records journaled before a structural change would replay over
        a base snapshot missing the new set, so an anchored database
        folds immediately (the new base includes the new set); an
        unanchored one just truncates — nothing was recoverable yet.
        """
        if self._journal is None:
            return
        if self._base_path is not None:
            self.compact()
        else:
            self._journal.reset()

    def _maybe_compact(self) -> None:
        """Fold the journal into the base snapshot once it outgrows the
        size/ratio trigger (see
        :func:`~repro.persist.journal.compaction_thresholds`)."""
        journal = self._journal
        if journal is None or self._base_path is None:
            return
        try:
            base_bytes = os.path.getsize(self._base_path)
        except OSError:
            base_bytes = 0
        threshold = max(
            self._compact_bytes, self._compact_ratio * base_bytes
        )
        if journal.records_bytes >= threshold:
            self.compact()

    def compact(self) -> None:
        """Fold the journal into a new base snapshot, then truncate it.

        The base is rewritten through the durable atomic-replace path
        (:func:`~repro.persist.framing.atomic_write_bytes`), so a
        ``kill -9`` at any point leaves either the old base plus the
        full journal, or the new base plus the (about-to-be-)empty
        journal — recovery is correct from both.  Requires a durable
        database that has been anchored by :meth:`save` or restored by
        :meth:`load`.
        """
        if self._journal is None:
            raise DatasetError(
                "compact() needs a durable database (open with durable=...)"
            )
        if self._base_path is None:
            raise DatasetError(
                "compact() needs a base snapshot: call save() first"
            )
        with TRACER.span("journal.compact", base=self._base_path):
            self.save(self._base_path)
            self._runtime_stats.compactions += 1
            self._runtime_stats.compaction_bytes += os.path.getsize(
                self._base_path
            )

    def _snapshot_state(self) -> dict:
        """The parts of this database a snapshot serializes (the
        inverse of :meth:`_restore`)."""
        return {
            "tree_kwargs": dict(self._tree_kwargs),
            "bulk": self._bulk,
            "shards": self._shards,
            "graph_cache_size": self._graph_cache_size,
            "graph_cache_snap": self._graph_cache_snap,
            "next_oid": self._next_oid,
            "obstacle_indexes": self._obstacle_indexes,
            "entity_trees": self._entity_trees,
            "context": self._context,
        }

    @classmethod
    def _restore(
        cls,
        *,
        tree_kwargs: dict,
        bulk: bool,
        shards: int | None,
        graph_cache_size: int,
        graph_cache_snap: float,
        next_oid: int,
        obstacle_indexes: "dict[str, ObstacleIndex | ShardedObstacleIndex]",
        entity_trees: dict[str, RStarTree],
        backend: "str | VisibilityBackend | None" = None,
        cache_policy: "str | CachePolicy | None" = None,
    ) -> "ObstacleDatabase":
        """Assemble a database around already-restored indexes.

        Bypasses the building constructor entirely: the obstacle and
        entity trees are installed verbatim and only the runtime
        context is created fresh (which re-subscribes the mutation
        feed).  The caller (:mod:`repro.persist.store`) re-admits the
        restored cache entries afterwards.
        """
        db = object.__new__(cls)
        db._graph_cache_snap = graph_cache_snap
        db._cache_policy = cache_policy
        db._shards = shards
        db._bulk = bulk
        db._tree_kwargs = dict(tree_kwargs)
        db._next_oid = next_oid
        db._graph_cache_size = graph_cache_size
        db._runtime_stats = RuntimeStats()
        db._backend = resolve_backend(backend, stats=db._runtime_stats)
        db._entity_trees = dict(entity_trees)
        db._obstacle_indexes = dict(obstacle_indexes)
        db._context = None
        db._serving_pool = None
        db._pool_finalizer = None
        db._metrics = None
        db._journal = None
        db._base_path = None
        db._compact_bytes = 0
        db._compact_ratio = 0.0
        db._rebuild_context()
        return db

    # -------------------------------------------------------------- queries
    def range(self, name: str, q: PointLike, e: float) -> list[tuple[Point, float]]:
        """OR: entities of ``name`` within obstructed distance ``e`` of ``q``."""
        with TRACER.span("query.range", set=name, e=e):
            return obstacle_range(
                self.entity_tree(name),
                self.obstacle_index,
                self._coerce_point(q),
                e,
                context=self._context,
            )

    def nearest(self, name: str, q: PointLike, k: int = 1) -> list[tuple[Point, float]]:
        """ONN: the ``k`` obstructed nearest neighbours of ``q``."""
        with TRACER.span("query.nearest", set=name, k=k):
            return obstacle_nearest(
                self.entity_tree(name),
                self.obstacle_index,
                self._coerce_point(q),
                k,
                context=self._context,
            )

    def inearest(self, name: str, q: PointLike) -> Iterator[tuple[Point, float]]:
        """Incremental ONN: neighbours in ascending obstructed distance."""
        return iter_obstacle_nearest(
            self.entity_tree(name),
            self.obstacle_index,
            self._coerce_point(q),
            context=self._context,
        )

    def distance_join(
        self,
        s_name: str,
        t_name: str,
        e: float,
        *,
        hilbert_order_seeds: bool = True,
    ) -> list[tuple[Point, Point, float]]:
        """ODJ: pairs within obstructed distance ``e``."""
        with TRACER.span("query.distance_join", s=s_name, t=t_name, e=e):
            return obstacle_distance_join(
                self.entity_tree(s_name),
                self.entity_tree(t_name),
                self.obstacle_index,
                e,
                hilbert_order_seeds=hilbert_order_seeds,
                universe=self.universe(),
                context=self._context,
            )

    def closest_pairs(
        self, s_name: str, t_name: str, k: int = 1
    ) -> list[tuple[Point, Point, float]]:
        """OCP: the ``k`` obstructed closest pairs."""
        with TRACER.span("query.closest_pairs", s=s_name, t=t_name, k=k):
            return obstacle_closest_pairs(
                self.entity_tree(s_name),
                self.entity_tree(t_name),
                self.obstacle_index,
                k,
                context=self._context,
            )

    def iclosest_pairs(
        self, s_name: str, t_name: str
    ) -> Iterator[tuple[Point, Point, float]]:
        """iOCP: closest pairs in ascending obstructed distance."""
        return iter_obstacle_closest_pairs(
            self.entity_tree(s_name),
            self.entity_tree(t_name),
            self.obstacle_index,
            context=self._context,
        )

    def semijoin(
        self, s_name: str, t_name: str, *, strategy: str = "cp"
    ) -> dict[Point, tuple[Point, float]]:
        """Distance semi-join: each entity of ``s_name`` mapped to its
        obstructed nearest neighbour in ``t_name``."""
        with TRACER.span("query.semijoin", s=s_name, t=t_name):
            return obstacle_semijoin(
                self.entity_tree(s_name),
                self.entity_tree(t_name),
                self.obstacle_index,
                strategy=strategy,
                context=self._context,
            )

    def obstructed_distance(self, a: PointLike, b: PointLike) -> float:
        """The obstructed distance between two arbitrary points.

        Served by the database's persistent context: the local graph
        around ``b`` is cached, so repeated evaluations against the
        same target skip both the obstacle retrieval and the graph
        construction.
        """
        with TRACER.span("query.distance"):
            return self.context.distance(
                self._coerce_point(a), self._coerce_point(b)
            )

    # ---------------------------------------------------------------- batch
    def batch_nearest(
        self,
        name: str,
        qs: Iterable[PointLike],
        k: int = 1,
        *,
        workers: int | None = None,
        mode: str | None = None,
        pool: str | None = None,
    ) -> list[list[tuple[Point, float]]]:
        """ONN for many query points through the batch engine.

        Returns one result list per query point, in input order;
        duplicate query points are computed once.  ``workers`` (default
        from ``REPRO_BATCH_WORKERS``, 0 = sequential through the shared
        context) fans distinct points over a worker pool of private
        contexts; ``mode`` picks the per-batch pool flavour
        (``REPRO_BATCH_MODE``: ``fork``/``thread``/``auto``) and
        ``pool`` the pool kind (``REPRO_BATCH_POOL``: ``fork`` forks
        per batch, ``persistent`` reuses the warm
        :meth:`serving_pool`).  A mid-batch obstacle mutation raises
        :class:`DatasetError` instead of returning mixed-version
        answers.
        """
        metric = ObstructedMetric(self.context)
        queries = [self._coerce_point(q) for q in qs]
        pool_obj, count = self._pool_for(pool, workers)
        with TRACER.span(
            "query.batch_nearest", set=name, n=len(queries), workers=count
        ):
            return batch_nearest(
                self.entity_tree(name),
                metric,
                queries,
                k,
                workers=count,
                mode=mode,
                pool=pool_obj,
                pool_command=("nearest", name, k, True),
            )

    def batch_range(
        self,
        name: str,
        qs: Iterable[PointLike],
        e: float,
        *,
        workers: int | None = None,
        mode: str | None = None,
        pool: str | None = None,
    ) -> list[list[tuple[Point, float]]]:
        """OR for many query points through the batch engine.

        Returns one result list per query point, in input order;
        duplicate query points are computed once.  ``workers``,
        ``mode`` and ``pool`` parallelize exactly as for
        :meth:`batch_nearest`.
        """
        metric = ObstructedMetric(self.context)
        queries = [self._coerce_point(q) for q in qs]
        pool_obj, count = self._pool_for(pool, workers)
        with TRACER.span(
            "query.batch_range", set=name, n=len(queries), workers=count
        ):
            return batch_range(
                self.entity_tree(name),
                metric,
                queries,
                e,
                workers=count,
                mode=mode,
                pool=pool_obj,
                pool_command=("range", name, e),
            )

    def batch_distance(
        self,
        pairs: Sequence[tuple[PointLike, PointLike]],
        *,
        workers: int | None = None,
        pool: str | None = None,
    ) -> list[float]:
        """Obstructed distances for many point pairs.

        Sequential by default (pairs sharing a target reuse its cached
        graph); ``pool="persistent"`` (or ``REPRO_BATCH_POOL``) with
        ``workers >= 2`` fans the pairs over the warm
        :meth:`serving_pool`.
        """
        metric = ObstructedMetric(self.context)
        coerced = [
            (self._coerce_point(a), self._coerce_point(b)) for a, b in pairs
        ]
        pool_obj, __ = self._pool_for(pool, workers)
        with TRACER.span("query.batch_distance", n=len(coerced)):
            return batch_distance(metric, coerced, pool=pool_obj)

    def path_nearest(
        self,
        name: str,
        waypoints: Sequence[PointLike],
        *,
        tolerance: float = 1e-3,
    ):
        """Constant-NN partition of a polyline route (moving client).

        Runs :func:`repro.core.continuous.path_nearest` over the
        database's *shared* runtime context, so the route's expansion
        graphs land in the same spatial cache regular queries use —
        repeated profiles and post-mutation re-profiles are answered
        by cache hits and repair-first patches, not cold rebuilds.
        Returns the :class:`~repro.core.continuous.NNInterval` list.
        """
        from repro.core.continuous import path_nearest

        with TRACER.span("query.path_nearest", set=name):
            return path_nearest(
                self.entity_tree(name),
                self.obstacle_index,
                [self._coerce_point(p) for p in waypoints],
                tolerance=tolerance,
                context=self._context,
            )

    def shortest_path(
        self, a: PointLike, b: PointLike
    ) -> tuple[float, list[Point]]:
        """The obstructed distance *and* one shortest obstacle-avoiding
        route between two arbitrary points.

        The distance is computed first (Fig. 8); every obstacle that can
        touch a path of that length lies within the disk of that radius
        around ``b``, so the route extracted from the corresponding
        local graph is a true shortest path.  Returns ``(inf, [])``
        when no path exists.
        """
        from math import inf, isinf

        from repro.visibility.shortest_path import shortest_path

        start = self._coerce_point(a)
        end = self._coerce_point(b)
        if start == end:
            return 0.0, [start]
        d = self.obstructed_distance(start, end)
        if isinf(d):
            return inf, []
        # The cached graph for `end` already covers radius d; add the
        # start as a transient entity and extract the route.
        entry = self.context.entry_for(end, d)
        graph = entry.graph
        added = graph.add_entity(start)
        try:
            return shortest_path(graph, start, end)
        finally:
            if added:
                graph.delete_entity(start)

    # ---------------------------------------------------------------- stats
    def metrics(self) -> MetricsRegistry:
        """The unified metrics registry over this database.

        One :class:`~repro.obs.metrics.MetricsRegistry` per database
        (created lazily, always live): the ``runtime`` group mirrors
        :meth:`runtime_stats`, ``pages`` mirrors :meth:`stats` with a
        ``tree`` label, and ``pool`` reports the persistent serving
        pool while one is up.  Export via ``snapshot()`` / ``to_json()``
        / ``to_prometheus()``.
        """
        if self._metrics is None:
            self._metrics = MetricsRegistry.for_database(self)
        return self._metrics

    def stats(self) -> Mapping[str, Mapping[str, int]]:
        """Per-tree page-access counters (reads / misses / writes).

        Sharded obstacle sets are reported under their set name with
        counters summed over the per-shard trees, so workloads read
        the same keys regardless of the storage layout.
        """
        out: dict[str, dict[str, int]] = {}
        for name, idx in self._obstacle_indexes.items():
            if isinstance(idx, ShardedObstacleIndex):
                total: dict[str, int] = {"reads": 0, "misses": 0, "writes": 0}
                for tree in idx.trees():
                    for key, value in tree.counter.snapshot().items():
                        total[key] = total.get(key, 0) + value
                out[f"obstacles:{name}"] = total
            else:
                out[idx.tree.name] = idx.tree.counter.snapshot()
        for tree in self._entity_trees.values():
            out[tree.name] = tree.counter.snapshot()
        return out

    def runtime_stats(self) -> dict[str, int | float | str]:
        """Counters of the shared query runtime (graph builds, cache
        hits/misses/evictions/invalidations, distance calls, sweep
        counts/timings and the active visibility ``backend``)."""
        return self._runtime_stats.snapshot()

    def reset_stats(self, *, clear_buffers: bool = False) -> None:
        """Zero all counters; optionally cold-start every cache.

        ``clear_buffers=True`` is the benchmark-isolation mode: it
        empties the R-tree page buffers *and* the visibility-graph
        cache, so consecutive workload measurements on one database do
        not prime each other.
        """
        for idx in self._obstacle_indexes.values():
            for tree in idx.trees():
                tree.reset_stats(clear_buffer=clear_buffers)
        for tree in self._entity_trees.values():
            tree.reset_stats(clear_buffer=clear_buffers)
        if clear_buffers and self._context is not None:
            self._context.invalidate()
        self._runtime_stats.reset()

    # -------------------------------------------------------------- helpers
    def _coerce_obstacle(self, value: ObstacleLike) -> Obstacle:
        if isinstance(value, Obstacle):
            obstacle = Obstacle(self._next_oid, value.polygon)
        elif isinstance(value, Polygon):
            obstacle = Obstacle(self._next_oid, value)
        elif isinstance(value, Rect):
            obstacle = Obstacle(self._next_oid, Polygon.from_rect(value))
        else:
            raise DatasetError(
                f"cannot interpret {type(value).__name__} as an obstacle"
            )
        self._next_oid += 1
        return obstacle

    @staticmethod
    def _coerce_point(value: PointLike) -> Point:
        if isinstance(value, Point):
            return value
        if isinstance(value, tuple) and len(value) == 2:
            return Point(value[0], value[1])
        raise QueryError(f"cannot interpret {value!r} as a point")
