"""Obstructed distance computation (paper Fig. 8).

The local visibility graph initially contains only the obstacles within
the Euclidean range ``d_E(p, q)``; the provisional shortest path may
however be crossed by obstacles just outside that range.  The algorithm
therefore alternates a shortest-path computation with an obstacle range
retrieval of radius equal to the current distance, until no new
obstacle appears — the distance can only grow between iterations, so
the fixpoint is the true obstructed distance.

The stateful helpers here are the building blocks of the shared query
runtime (:mod:`repro.runtime`): :class:`SourceDistanceField` evaluates
many candidates against one fixed source, and
:class:`ObstructedDistanceComputer` is a thin compatibility wrapper
over :class:`repro.runtime.context.QueryContext`, which owns the
persistent, versioned LRU graph cache.
"""

from __future__ import annotations

from math import inf
from typing import Callable, Protocol

from repro.geometry.point import Point
from repro.model import Obstacle
from repro.visibility.graph import VisibilityGraph
from repro.visibility.shortest_path import shortest_path_dist


class ObstacleSource(Protocol):
    """Anything that can produce the obstacles intersecting a disk."""

    def obstacles_in_range(self, center: Point, radius: float) -> list[Obstacle]:
        """Obstacles intersecting the closed disk ``(center, radius)``."""


def compute_obstructed_distance(
    graph: VisibilityGraph,
    p: Point,
    q: Point,
    source: ObstacleSource,
    *,
    bound: float = inf,
) -> float:
    """Obstructed distance between graph nodes ``p`` and ``q``.

    ``graph`` is grown in place (paper: the graph is reused across the
    distance computations of one query).  Returns ``inf`` when ``p`` or
    ``q`` is sealed off by obstacles.

    ``bound`` enables threshold pruning: the local-graph distance is
    the shortest path avoiding all *known* obstacles, hence a lower
    bound on the true obstructed distance, so once it exceeds ``bound``
    the exact value cannot matter to a caller that discards results
    beyond ``bound`` — iteration stops and the (possibly inexact,
    always >= true-value-capped-at-bound) distance is returned.
    """
    d = shortest_path_dist(graph, p, q)
    while True:
        if d > bound:
            return d
        retrieved = source.obstacles_in_range(q, d)
        new_obstacles = [o for o in retrieved if not graph.has_obstacle(o.oid)]
        if not new_obstacles:
            return d
        for obs in new_obstacles:
            graph.add_obstacle(obs)
        d = shortest_path_dist(graph, p, q)


class SourceDistanceField:
    """Obstructed distances from one fixed source over a growing graph.

    ONN evaluates many candidates against the *same* query point.
    Instead of mutating the graph and running Dijkstra per candidate,
    this keeps a complete distance field from the source: a candidate's
    graph distance is ``min over its visible nodes v of field[v] +
    |v - candidate|`` (any shortest path leaves the candidate through a
    visible node).  The field is recomputed whenever the graph's
    obstacle revision moves — whether the obstacles were added by this
    field's own Fig. 8 enlargement or by another user of a shared,
    cached graph.

    ``grow`` optionally replaces the enlargement step: it receives the
    current provisional distance and must return ``True`` when new
    obstacles entered the graph.  The query runtime passes the cached
    graph's coverage-aware expansion here, so already-covered radii
    skip the obstacle retrieval entirely.  ``readmit`` is how an
    evicted source re-enters a *shared* graph: the runtime passes its
    guest-tracked admission so the re-added point stays subject to the
    guest bound; without it the point is added directly.
    """

    def __init__(
        self,
        graph: VisibilityGraph,
        source_point: Point,
        source: ObstacleSource,
        *,
        grow: Callable[[float], bool] | None = None,
        readmit: Callable[[], None] | None = None,
        stats: "object | None" = None,
    ) -> None:
        if not graph.has_node(source_point):
            graph.add_entity(source_point)
        self._graph = graph
        self._q = source_point
        self._source = source
        self._grow = grow
        self._readmit = readmit
        self._stats = stats
        self._field: dict[Point, float] | None = None
        self._field_revision = -1

    @property
    def graph(self) -> VisibilityGraph:
        """The underlying (growing) local visibility graph."""
        return self._graph

    def distance_to(self, p: Point, *, bound: float = inf) -> float:
        """The obstructed distance from the source to ``p`` (Fig. 8).

        With a finite ``bound``, iteration stops as soon as the
        provisional lower bound exceeds it (see
        :func:`compute_obstructed_distance`).
        """
        if self._grow is not None:
            # Revalidate a runtime-managed graph before evaluating: a
            # dynamic obstacle update since the last call must not let
            # a stale provisional short-circuit via the bound check.
            self._grow(0.0)
        while True:
            d = self._provisional(p)
            if d > bound:
                return d
            if not self._enlarge(d):
                return d

    def batch_eval(
        self, points: "list[Point]", *, bound: float = inf
    ) -> list[float]:
        """Distances from the source to every point in ``points``.

        One revalidation, one traced span, and one shared provisional
        field serve the whole batch — the range-refinement and
        nearest-seed paths hand their entire candidate set here instead
        of looping ``distance_to``.  Semantics per candidate are
        exactly :meth:`distance_to` (including the Fig. 8 enlargement
        fixpoint and the ``bound`` early exit).
        """
        from repro.obs.trace import TRACER

        points = list(points)
        with TRACER.span("field.batch_eval", size=len(points)):
            if self._grow is not None:
                self._grow(0.0)
            out: list[float] = []
            for p in points:
                while True:
                    d = self._provisional(p)
                    if d > bound or not self._enlarge(d):
                        break
                out.append(d)
        TRACER.count("field.batch_eval")
        if self._stats is not None:
            self._stats.field_batch_evals += 1
        return out

    def _enlarge(self, radius: float) -> bool:
        if self._grow is not None:
            return self._grow(radius)
        retrieved = self._source.obstacles_in_range(self._q, radius)
        new_obstacles = [
            o for o in retrieved if not self._graph.has_obstacle(o.oid)
        ]
        for obs in new_obstacles:
            self._graph.add_obstacle(obs)
        return bool(new_obstacles)

    def _provisional(self, p: Point) -> float:
        from repro.visibility.shortest_path import dijkstra
        from repro.visibility.sweep import visible_from

        if p == self._q:
            return 0.0
        if not self._graph.has_node(self._q):
            # A shared, cached graph may have evicted this field's
            # source in the meantime (guest-point bound of the spatial
            # cache key): re-admit it before evaluating.
            if self._readmit is not None:
                self._readmit()
            else:
                self._graph.add_entity(self._q)
        revision = self._graph.obstacle_revision
        if self._field is None or self._field_revision != revision:
            self._field = dijkstra(self._graph, self._q)
            self._field_revision = revision
        field = self._field
        if self._graph.has_node(p):
            dp = field.get(p)
            if dp is not None:
                return dp
            # p joined the graph after the field's Dijkstra snapshot
            # (free-point admissions — e.g. a shared graph taking on a
            # near-duplicate centre as a guest — do not bump
            # obstacle_revision).  The field would wrongly report inf;
            # answer through p's live adjacency instead.  Neighbours
            # absent from the field are themselves post-snapshot free
            # points, safe to skip: a shortest path never turns at a
            # free point, so any path through one also leaves p along
            # a direct edge to a fielded node.
            best = inf
            for v, w in self._graph.neighbors(p).items():
                dv = field.get(v)
                if dv is not None and dv + w < best:
                    best = dv + w
            # Memoize: this equals what Dijkstra would have stored for
            # p, and the field is discarded on any revision bump.
            field[p] = best
            return best
        best = inf
        for v in visible_from(p, self._graph):
            dv = field.get(v)
            if dv is not None:
                candidate = dv + v.distance(p)
                if candidate < best:
                    best = candidate
        return best


class ObstructedDistanceComputer:
    """Reusable obstructed-distance evaluation with graph caching.

    OCP and the standalone ``obstructed_distance`` API compute distances
    between arbitrary point pairs.  Rebuilding a visibility graph per
    pair is wasteful when consecutive pairs share their first point (the
    paper makes the same observation for ODJ seeds), so graphs are
    cached per source point.

    This is now a thin compatibility facade over the shared runtime:
    the cache is the true-LRU, versioned
    :class:`~repro.runtime.cache.VisibilityGraphCache` owned by a
    :class:`~repro.runtime.context.QueryContext` (pass ``context`` to
    share one across query types; otherwise a private context is
    created over ``source``).
    """

    def __init__(
        self,
        source: ObstacleSource,
        *,
        cache_size: int = 32,
        context: "QueryContext | None" = None,
    ) -> None:
        from repro.runtime.context import QueryContext

        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        if context is None:
            context = QueryContext(source, cache_size=cache_size)
        self._context = context

    @property
    def context(self) -> "QueryContext":
        """The runtime context holding the shared graph cache."""
        return self._context

    def distance(self, p: Point, q: Point, *, bound: float = inf) -> float:
        """Obstructed distance ``d_O(p, q)``.

        The cache is keyed by ``q`` (the expansion center of Fig. 8's
        range retrievals).  ``bound`` enables the threshold pruning of
        :func:`compute_obstructed_distance`.
        """
        return self._context.distance(p, q, bound=bound)

    def clear(self) -> None:
        """Drop all cached graphs."""
        self._context.invalidate()
