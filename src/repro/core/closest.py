"""Obstacle closest pairs — OCP and iOCP (paper Sec. 6, Figs. 11-12).

OCP mirrors ONN: the k Euclidean closest pairs seed the result, their
largest obstructed distance bounds the incremental Euclidean
closest-pair stream, and the bound shrinks as better pairs are found.

iOCP removes the fixed ``k``: a retrieved pair can be *emitted* once
its obstructed distance is no larger than the Euclidean distance of the
most recent pair, since every later pair has a larger Euclidean — and
therefore larger obstructed — distance.  This serves browsing and
complex queries with unknown-in-advance stopping conditions.

Both entry points are the shared runtime skeletons
(:func:`repro.runtime.queries.metric_closest_pairs` /
:func:`~repro.runtime.queries.iter_metric_closest_pairs`); exact
evaluations are centred on the ``s`` side, so graphs cached per
first-element point are reused across pairs, mirroring ODJ's seed
reuse.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.core.distance import ObstacleSource
from repro.geometry.point import Point
from repro.index.rstar import RStarTree
from repro.runtime.metric import resolve_metric
from repro.runtime.queries import (
    iter_metric_closest_pairs,
    metric_closest_pairs,
)

if TYPE_CHECKING:
    from repro.runtime.context import QueryContext


def obstacle_closest_pairs(
    tree_s: RStarTree,
    tree_t: RStarTree,
    obstacle_source: ObstacleSource,
    k: int,
    *,
    cache_size: int = 32,
    context: "QueryContext | None" = None,
) -> list[tuple[Point, Point, float]]:
    """The ``k`` pairs with smallest obstructed distance.

    Returns ``(s, t, d_O)`` sorted by obstructed distance; fewer than
    ``k`` when ``|S| * |T| < k``.  ``cache_size`` bounds the private
    graph cache when no shared ``context`` is given.
    """
    metric = resolve_metric(obstacle_source, context, cache_size=cache_size)
    return metric_closest_pairs(tree_s, tree_t, metric, k)


def iter_obstacle_closest_pairs(
    tree_s: RStarTree,
    tree_t: RStarTree,
    obstacle_source: ObstacleSource,
    *,
    cache_size: int = 32,
    context: "QueryContext | None" = None,
) -> Iterator[tuple[Point, Point, float]]:
    """Incremental OCP (paper Fig. 12): pairs in ascending obstructed
    distance, no ``k`` parameter — consume as many as needed.
    """
    metric = resolve_metric(obstacle_source, context, cache_size=cache_size)
    return iter_metric_closest_pairs(tree_s, tree_t, metric)
