"""Obstacle closest pairs — OCP and iOCP (paper Sec. 6, Figs. 11-12).

OCP mirrors ONN: the k Euclidean closest pairs seed the result, their
largest obstructed distance bounds the incremental Euclidean
closest-pair stream, and the bound shrinks as better pairs are found.

iOCP removes the fixed ``k``: a retrieved pair can be *emitted* once
its obstructed distance is no larger than the Euclidean distance of the
most recent pair, since every later pair has a larger Euclidean — and
therefore larger obstructed — distance.  This serves browsing and
complex queries with unknown-in-advance stopping conditions.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Iterator

from repro.core.distance import ObstacleSource, ObstructedDistanceComputer
from repro.errors import QueryError
from repro.euclidean.closest import IncrementalClosestPairs
from repro.geometry.point import Point
from repro.index.rstar import RStarTree


def obstacle_closest_pairs(
    tree_s: RStarTree,
    tree_t: RStarTree,
    obstacle_source: ObstacleSource,
    k: int,
    *,
    cache_size: int = 32,
) -> list[tuple[Point, Point, float]]:
    """The ``k`` pairs with smallest obstructed distance.

    Returns ``(s, t, d_O)`` sorted by obstructed distance; fewer than
    ``k`` when ``|S| * |T| < k``.  Visibility graphs are cached per
    first-element point, mirroring ODJ's seed reuse.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    computer = ObstructedDistanceComputer(obstacle_source, cache_size=cache_size)
    stream = IncrementalClosestPairs(tree_s, tree_t)
    result: list[tuple[float, Point, Point]] = []
    seeded = 0
    for s, t, __ in stream:
        d_o = computer.distance(t, s)
        insort(result, (d_o, s, t))
        seeded += 1
        if seeded == k:
            break
    if not result:
        return []
    d_emax = result[k - 1][0] if len(result) >= k else float("inf")
    for s, t, d_e in stream:
        if d_e > d_emax:
            break
        d_o = computer.distance(t, s, bound=d_emax)
        if d_o < result[k - 1][0]:
            result.pop()
            insort(result, (d_o, s, t))
            d_emax = result[k - 1][0]
    return [(s, t, d_o) for d_o, s, t in result[:k]]


def iter_obstacle_closest_pairs(
    tree_s: RStarTree,
    tree_t: RStarTree,
    obstacle_source: ObstacleSource,
    *,
    cache_size: int = 32,
) -> Iterator[tuple[Point, Point, float]]:
    """Incremental OCP (paper Fig. 12): pairs in ascending obstructed
    distance, no ``k`` parameter — consume as many as needed.
    """
    computer = ObstructedDistanceComputer(obstacle_source, cache_size=cache_size)
    stream = IncrementalClosestPairs(tree_s, tree_t)
    hold: list[tuple[float, int, Point, Point]] = []
    seq = 0
    for s, t, d_e in stream:
        # Everything already evaluated with d_O <= d_E(s, t) is final:
        # no later Euclidean pair can undercut it.
        while hold and hold[0][0] <= d_e:
            d_o, __, hs, ht = heapq.heappop(hold)
            yield hs, ht, d_o
        d_o = computer.distance(t, s)
        heapq.heappush(hold, (d_o, seq, s, t))
        seq += 1
    while hold:
        d_o, __, hs, ht = heapq.heappop(hold)
        yield hs, ht, d_o
