"""Instrumentation: page-access counters, timers and experiment records.

The paper's I/O metric is the number of R-tree page accesses with an
LRU buffer sized at 10 % of each tree.  These helpers make that metric
a first-class, resettable observable on every index.
"""

from repro.stats.counters import PageAccessCounter
from repro.stats.timing import Timer
from repro.stats.experiment import ExperimentSeries, format_table

__all__ = ["PageAccessCounter", "Timer", "ExperimentSeries", "format_table"]
