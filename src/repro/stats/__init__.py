"""Instrumentation: page-access counters, timers and experiment records.

The paper's I/O metric is the number of R-tree page accesses with an
LRU buffer sized at 10 % of each tree.  :class:`PageAccessCounter`
makes that metric a first-class, resettable observable on every index.

The timing/experiment helpers now live in :mod:`repro.obs` (the
observability package); the re-exports here — like the
``repro.stats.timing`` / ``repro.stats.experiment`` module paths — are
deprecated shims that emit :class:`DeprecationWarning` on first use
and are scheduled for removal (see the deprecations note in the
README).
"""

import warnings

from repro.stats.counters import PageAccessCounter

__all__ = ["PageAccessCounter", "Timer", "ExperimentSeries", "format_table"]

#: Deprecated re-exports and their new homes; resolved lazily so that
#: importing ``repro.stats`` for :class:`PageAccessCounter` (which is
#: canonical here, not deprecated) stays silent.
_MOVED = {
    "Timer": "repro.obs.timing",
    "ExperimentSeries": "repro.obs.experiment",
    "format_table": "repro.obs.experiment",
}


def __getattr__(name: str):
    moved = _MOVED.get(name)
    if moved is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"repro.stats.{name} is deprecated; import {name} from {moved} "
        f"(the repro.stats re-export will be removed in a future release)",
        DeprecationWarning,
        stacklevel=2,
    )
    import repro.obs.experiment
    import repro.obs.timing

    module = (
        repro.obs.timing if moved == "repro.obs.timing"
        else repro.obs.experiment
    )
    return getattr(module, name)
