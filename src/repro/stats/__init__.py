"""Instrumentation: page-access counters, timers and experiment records.

The paper's I/O metric is the number of R-tree page accesses with an
LRU buffer sized at 10 % of each tree.  :class:`PageAccessCounter`
makes that metric a first-class, resettable observable on every index.

The timing/experiment helpers now live in :mod:`repro.obs` (the
observability package); they are re-exported here for compatibility —
the ``repro.stats.timing`` / ``repro.stats.experiment`` module paths
are deprecated shims.
"""

from repro.obs.experiment import ExperimentSeries, format_table
from repro.obs.timing import Timer
from repro.stats.counters import PageAccessCounter

__all__ = ["PageAccessCounter", "Timer", "ExperimentSeries", "format_table"]
