"""Deprecated shim — :class:`Timer` moved to :mod:`repro.obs.timing`."""

from __future__ import annotations

import warnings

from repro.obs.timing import Timer

__all__ = ["Timer"]

warnings.warn(
    "repro.stats.timing is deprecated; import Timer from repro.obs "
    "(or repro.obs.timing) instead",
    DeprecationWarning,
    stacklevel=2,
)
