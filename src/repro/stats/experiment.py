"""Deprecated shim — moved to :mod:`repro.obs.experiment`."""

from __future__ import annotations

import warnings

from repro.obs.experiment import ExperimentSeries, format_table

__all__ = ["ExperimentSeries", "format_table"]

warnings.warn(
    "repro.stats.experiment is deprecated; import ExperimentSeries / "
    "format_table from repro.obs (or repro.obs.experiment) instead",
    DeprecationWarning,
    stacklevel=2,
)
