"""Page-access accounting for simulated disk-resident indexes."""

from __future__ import annotations


class PageAccessCounter:
    """Counts logical node reads, physical page accesses and writes.

    *Logical reads* count every node visit.  *Misses* count only the
    visits that the LRU buffer could not serve — this is the paper's
    "page accesses" metric.  *Writes* count node creations/updates
    during index construction and maintenance.
    """

    __slots__ = ("reads", "misses", "writes")

    def __init__(self) -> None:
        self.reads = 0
        self.misses = 0
        self.writes = 0

    def record_read(self, hit: bool) -> None:
        """Record one node visit; ``hit`` says whether the buffer had it."""
        self.reads += 1
        if not hit:
            self.misses += 1

    def record_write(self) -> None:
        """Record one node write."""
        self.writes += 1

    def reset(self) -> None:
        """Zero all counters (between queries / workloads)."""
        self.reads = 0
        self.misses = 0
        self.writes = 0

    def snapshot(self) -> dict[str, int]:
        """Current counts as a plain dict."""
        return {"reads": self.reads, "misses": self.misses, "writes": self.writes}

    def __repr__(self) -> str:
        return (
            f"PageAccessCounter(reads={self.reads}, misses={self.misses}, "
            f"writes={self.writes})"
        )
