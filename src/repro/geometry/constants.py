"""Numerical tolerances shared by all geometric predicates."""

from __future__ import annotations

#: Relative tolerance used by orientation / incidence predicates.  Two
#: directions whose angular deviation is below roughly this value are
#: considered collinear.  The value is a compromise: large enough to
#: absorb floating-point noise from coordinate arithmetic on
#: universe-sized coordinates (the benchmarks use a 10,000 x 10,000
#: universe), small enough not to merge genuinely distinct vertices.
EPS = 1e-9

#: Absolute slack used when comparing squared distances.
EPS_SQ = EPS * EPS

#: A value that compares greater than any finite distance in a universe.
INF = float("inf")
