"""Circular query regions.

Obstacle query processing is built around *disk* ranges: candidates are
the entities within Euclidean distance ``e`` of the query point, and the
relevant obstacles are the ones intersecting the same disk (paper
Sec. 3).  ``Circle`` packages the center/radius pair with the pruning
predicates the R-tree needs.
"""

from __future__ import annotations

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect


class Circle:
    """A closed disk ``{p : d(p, center) <= radius}``."""

    __slots__ = ("center", "radius")

    def __init__(self, center: Point, radius: float) -> None:
        if radius < 0:
            raise GeometryError(f"negative circle radius: {radius}")
        self.center = center
        self.radius = float(radius)

    def __repr__(self) -> str:
        return f"Circle({self.center!r}, r={self.radius:g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circle):
            return NotImplemented
        return self.center == other.center and self.radius == other.radius

    def __hash__(self) -> int:
        return hash((self.center, self.radius))

    def contains_point(self, p: Point) -> bool:
        """True when ``p`` lies in the closed disk."""
        return self.center.distance_sq(p) <= self.radius * self.radius

    def intersects_rect(self, rect: Rect) -> bool:
        """True when the disk and the rectangle share at least one point."""
        return rect.mindist_point_sq(self.center) <= self.radius * self.radius

    def intersects_polygon(self, poly: Polygon) -> bool:
        """True when the disk and the polygon share at least one point.

        Used as the refinement step after the R-tree filter when
        obstacles are general polygons rather than rectangles.
        """
        if not self.intersects_rect(poly.mbr):
            return False
        return poly.distance_to_point(self.center) <= self.radius

    def bounding_rect(self) -> Rect:
        """The MBR of the disk (the R-tree filter region)."""
        return Rect(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )
