"""Immutable 2-D points.

``Point`` doubles as the node type of visibility graphs, so it is
hashable and compares by exact coordinate equality (epsilon comparisons
would break hashing).  Geometric predicates that need tolerance live in
:mod:`repro.geometry.segment`.
"""

from __future__ import annotations

import math
from typing import Iterator


class Point:
    """An immutable point in the plane.

    Points are ordered lexicographically (by ``(x, y)``), support
    arithmetic with other points (vector-style addition/subtraction and
    scalar multiplication) and are hashable, which lets them serve
    directly as graph nodes and dictionary keys.
    """

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float) -> None:
        object.__setattr__(self, "x", float(x))
        object.__setattr__(self, "y", float(y))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Point is immutable")

    # -- value semantics ------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self.x == other.x and self.y == other.y

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __lt__(self, other: "Point") -> bool:
        return (self.x, self.y) < (other.x, other.y)

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __reduce__(self) -> tuple:
        # Default slot-based pickling would call ``__setattr__`` (which
        # raises for immutability); reconstruct through the constructor
        # instead so points can cross process boundaries (the parallel
        # batch executor ships query results between workers).
        return (Point, (self.x, self.y))

    def __repr__(self) -> str:
        return f"Point({self.x:g}, {self.y:g})"

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    # -- vector arithmetic ----------------------------------------------
    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    # -- metrics ---------------------------------------------------------
    def distance(self, other: "Point") -> float:
        """Euclidean distance to ``other``.

        Computed as ``sqrt(dx*dx + dy*dy)`` rather than ``hypot``:
        both sqrt and the products/sum are IEEE correctly-rounded, so a
        vectorized evaluation (``numpy.sqrt(dx*dx + dy*dy)`` in the
        compiled distance-field engine) produces bit-identical values,
        whereas ``math.hypot`` and ``numpy.hypot`` disagree by an ulp
        on ~1e-5 of inputs.  The extra overflow guard hypot buys is
        irrelevant at coordinate scales (< 1e150).
        """
        dx = self.x - other.x
        dy = self.y - other.y
        return math.sqrt(dx * dx + dy * dy)

    def distance_sq(self, other: "Point") -> float:
        """Squared Euclidean distance to ``other`` (no sqrt)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def norm(self) -> float:
        """Length of this point interpreted as a vector from the origin."""
        return math.sqrt(self.x * self.x + self.y * self.y)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points (see :meth:`Point.distance`
    for why this is ``sqrt(dx*dx + dy*dy)`` and not ``hypot``)."""
    dx = a.x - b.x
    dy = a.y - b.y
    return math.sqrt(dx * dx + dy * dy)


def distance_sq(a: Point, b: Point) -> float:
    """Squared Euclidean distance between two points."""
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def midpoint(a: Point, b: Point) -> Point:
    """The midpoint of segment ``ab``."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)
