"""Exact-ish 2-D computational geometry substrate.

Provides the primitives every other layer builds on: points, minimum
bounding rectangles, segment predicates, simple polygons and circular
query regions.  All predicates use a relative epsilon
(:data:`repro.geometry.constants.EPS`) so that the visibility machinery
behaves sensibly for entities lying exactly on obstacle boundaries,
which the paper's workloads allow.
"""

from repro.geometry.constants import EPS
from repro.geometry.point import Point, distance, distance_sq, midpoint
from repro.geometry.rect import Rect
from repro.geometry.segment import (
    COLLINEAR,
    CCW,
    CW,
    ccw,
    cross,
    on_segment,
    point_segment_distance,
    segment_intersection_params,
    segment_intersection_point,
    segments_intersect,
    segments_properly_intersect,
)
from repro.geometry.polygon import Polygon
from repro.geometry.circle import Circle

__all__ = [
    "EPS",
    "Point",
    "distance",
    "distance_sq",
    "midpoint",
    "Rect",
    "COLLINEAR",
    "CCW",
    "CW",
    "ccw",
    "cross",
    "on_segment",
    "point_segment_distance",
    "segment_intersection_params",
    "segment_intersection_point",
    "segments_intersect",
    "segments_properly_intersect",
    "Polygon",
    "Circle",
]
