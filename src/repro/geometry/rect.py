"""Axis-aligned rectangles (MBRs).

``Rect`` is the workhorse of the R*-tree: node entries store one, the
split and ChooseSubtree heuristics are defined in terms of its area,
margin and overlap, and query pruning uses ``mindist`` metrics
[HS99].
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import GeometryError
from repro.geometry.point import Point


class Rect:
    """A closed axis-aligned rectangle ``[minx, maxx] x [miny, maxy]``.

    Degenerate rectangles (points, horizontal/vertical segments) are
    allowed — point data is stored as zero-extent rectangles in leaf
    entries.
    """

    __slots__ = ("minx", "miny", "maxx", "maxy")

    def __init__(self, minx: float, miny: float, maxx: float, maxy: float) -> None:
        if minx > maxx or miny > maxy:
            raise GeometryError(
                f"invalid Rect: ({minx}, {miny}, {maxx}, {maxy}) has min > max"
            )
        self.minx = float(minx)
        self.miny = float(miny)
        self.maxx = float(maxx)
        self.maxy = float(maxy)

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_point(cls, p: Point) -> "Rect":
        """A zero-extent rectangle covering a single point."""
        return cls(p.x, p.y, p.x, p.y)

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Rect":
        """The MBR of a non-empty collection of points."""
        pts = list(points)
        if not pts:
            raise GeometryError("Rect.from_points requires at least one point")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return cls(min(xs), min(ys), max(xs), max(ys))

    @classmethod
    def union_all(cls, rects: Iterable["Rect"]) -> "Rect":
        """The MBR enclosing a non-empty collection of rectangles."""
        it = iter(rects)
        try:
            first = next(it)
        except StopIteration:
            raise GeometryError("Rect.union_all requires at least one rect") from None
        minx, miny = first.minx, first.miny
        maxx, maxy = first.maxx, first.maxy
        for r in it:
            if r.minx < minx:
                minx = r.minx
            if r.miny < miny:
                miny = r.miny
            if r.maxx > maxx:
                maxx = r.maxx
            if r.maxy > maxy:
                maxy = r.maxy
        return cls(minx, miny, maxx, maxy)

    # -- value semantics ---------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return (
            self.minx == other.minx
            and self.miny == other.miny
            and self.maxx == other.maxx
            and self.maxy == other.maxy
        )

    def __hash__(self) -> int:
        return hash((self.minx, self.miny, self.maxx, self.maxy))

    def __repr__(self) -> str:
        return f"Rect({self.minx:g}, {self.miny:g}, {self.maxx:g}, {self.maxy:g})"

    # -- basic measures ----------------------------------------------------
    @property
    def width(self) -> float:
        """Extent along x."""
        return self.maxx - self.minx

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.maxy - self.miny

    def area(self) -> float:
        """Area of the rectangle (0 for degenerate rects)."""
        return (self.maxx - self.minx) * (self.maxy - self.miny)

    def margin(self) -> float:
        """Half-perimeter, the R* margin metric."""
        return (self.maxx - self.minx) + (self.maxy - self.miny)

    def center(self) -> Point:
        """Center point of the rectangle."""
        return Point((self.minx + self.maxx) / 2.0, (self.miny + self.maxy) / 2.0)

    def corners(self) -> list[Point]:
        """The four corner points in counter-clockwise order."""
        return [
            Point(self.minx, self.miny),
            Point(self.maxx, self.miny),
            Point(self.maxx, self.maxy),
            Point(self.minx, self.maxy),
        ]

    # -- relations -----------------------------------------------------------
    def intersects(self, other: "Rect") -> bool:
        """True when the closed rectangles share at least one point."""
        return (
            self.minx <= other.maxx
            and other.minx <= self.maxx
            and self.miny <= other.maxy
            and other.miny <= self.maxy
        )

    def contains_point(self, p: Point) -> bool:
        """True when ``p`` lies inside or on the boundary."""
        return self.minx <= p.x <= self.maxx and self.miny <= p.y <= self.maxy

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside (or on) this rect."""
        return (
            self.minx <= other.minx
            and self.miny <= other.miny
            and other.maxx <= self.maxx
            and other.maxy <= self.maxy
        )

    # -- combination --------------------------------------------------------
    def union(self, other: "Rect") -> "Rect":
        """The MBR of this rect and ``other``."""
        return Rect(
            min(self.minx, other.minx),
            min(self.miny, other.miny),
            max(self.maxx, other.maxx),
            max(self.maxy, other.maxy),
        )

    def intersection_area(self, other: "Rect") -> float:
        """Area of the overlap region (0 when disjoint)."""
        w = min(self.maxx, other.maxx) - max(self.minx, other.minx)
        if w <= 0.0:
            return 0.0
        h = min(self.maxy, other.maxy) - max(self.miny, other.miny)
        if h <= 0.0:
            return 0.0
        return w * h

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed for this rect to also cover ``other``."""
        return self.union(other).area() - self.area()

    # -- distance metrics ------------------------------------------------------
    def mindist_point_sq(self, p: Point) -> float:
        """Squared minimum distance from ``p`` to this rect (0 if inside).

        This is the classic MINDIST lower bound used for best-first
        R-tree traversal [HS99].
        """
        dx = 0.0
        if p.x < self.minx:
            dx = self.minx - p.x
        elif p.x > self.maxx:
            dx = p.x - self.maxx
        dy = 0.0
        if p.y < self.miny:
            dy = self.miny - p.y
        elif p.y > self.maxy:
            dy = p.y - self.maxy
        return dx * dx + dy * dy

    def mindist_point(self, p: Point) -> float:
        """Minimum distance from ``p`` to this rect (0 if inside)."""
        return math.sqrt(self.mindist_point_sq(p))

    def maxdist_point_sq(self, p: Point) -> float:
        """Squared maximum distance from ``p`` to any point of this rect."""
        dx = max(abs(p.x - self.minx), abs(p.x - self.maxx))
        dy = max(abs(p.y - self.miny), abs(p.y - self.maxy))
        return dx * dx + dy * dy

    def maxdist_point(self, p: Point) -> float:
        """Maximum distance from ``p`` to any point of this rect."""
        return math.sqrt(self.maxdist_point_sq(p))

    def mindist_rect_sq(self, other: "Rect") -> float:
        """Squared minimum distance between two rects (0 when intersecting).

        This is the MBR-to-MBR pruning metric of R-tree joins [BKS93]
        and closest-pair algorithms [CMTV00].
        """
        dx = 0.0
        if other.maxx < self.minx:
            dx = self.minx - other.maxx
        elif self.maxx < other.minx:
            dx = other.minx - self.maxx
        dy = 0.0
        if other.maxy < self.miny:
            dy = self.miny - other.maxy
        elif self.maxy < other.miny:
            dy = other.miny - self.maxy
        return dx * dx + dy * dy

    def mindist_rect(self, other: "Rect") -> float:
        """Minimum distance between two rects (0 when intersecting)."""
        return math.sqrt(self.mindist_rect_sq(other))

    def expanded(self, delta: float) -> "Rect":
        """A rect grown by ``delta`` on every side (shrunk when negative)."""
        return Rect(
            self.minx - delta, self.miny - delta, self.maxx + delta, self.maxy + delta
        )
