"""Simple polygons — the obstacle representation.

The paper's experiments use street MBRs (rectangles) but the algorithms
support arbitrary simple polygons; so does this class.  The two
operations that matter for obstructed query processing are

* strict interior containment (boundary points do *not* count — the
  paper allows entities to lie on obstacle boundaries), and
* ``crosses_interior(a, b)``: does the open segment ``ab`` pass through
  the polygon's interior?  This defines mutual visibility.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import GeometryError
from repro.geometry.constants import EPS
from repro.geometry.point import Point, midpoint
from repro.geometry.rect import Rect
from repro.geometry.segment import (
    COLLINEAR,
    ccw,
    on_segment,
    point_segment_distance,
    segment_intersection_params,
    segments_properly_intersect,
)


class Polygon:
    """A simple polygon with vertices stored in counter-clockwise order.

    The constructor validates simplicity cheaply (no repeated
    consecutive vertices, non-zero area) and normalises orientation to
    CCW.  Full self-intersection checking is available via
    :meth:`validate_simple` and used by the dataset loaders.
    """

    __slots__ = ("vertices", "mbr", "_edges")

    def __init__(self, vertices: Sequence[Point]) -> None:
        verts = [v if isinstance(v, Point) else Point(*v) for v in vertices]
        if len(verts) < 3:
            raise GeometryError("polygon needs at least 3 vertices")
        # Drop a duplicated closing vertex, if provided.
        if verts[0] == verts[-1]:
            verts = verts[:-1]
        if len(verts) < 3:
            raise GeometryError("polygon needs at least 3 distinct vertices")
        for i, v in enumerate(verts):
            if v == verts[(i + 1) % len(verts)]:
                raise GeometryError(f"repeated consecutive vertex {v!r}")
        area2 = _signed_area2(verts)
        if abs(area2) <= EPS:
            raise GeometryError("degenerate polygon (zero area)")
        if area2 < 0:
            verts.reverse()
        self.vertices: tuple[Point, ...] = tuple(verts)
        self.mbr: Rect = Rect.from_points(verts)
        self._edges: tuple[tuple[Point, Point], ...] = tuple(
            (self.vertices[i], self.vertices[(i + 1) % len(self.vertices)])
            for i in range(len(self.vertices))
        )

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_rect(cls, rect: Rect) -> "Polygon":
        """A rectangular obstacle from an MBR (the paper's street MBRs)."""
        if rect.width <= 0 or rect.height <= 0:
            raise GeometryError("rectangle obstacle must have positive extent")
        return cls(rect.corners())

    @classmethod
    def regular(cls, center: Point, radius: float, sides: int) -> "Polygon":
        """A regular ``sides``-gon — handy for tests and examples."""
        if sides < 3:
            raise GeometryError("regular polygon needs at least 3 sides")
        if radius <= 0:
            raise GeometryError("regular polygon needs positive radius")
        pts = [
            Point(
                center.x + radius * math.cos(2 * math.pi * i / sides),
                center.y + radius * math.sin(2 * math.pi * i / sides),
            )
            for i in range(sides)
        ]
        return cls(pts)

    # -- value semantics ------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self.vertices == other.vertices

    def __hash__(self) -> int:
        return hash(self.vertices)

    def __repr__(self) -> str:
        return f"Polygon({len(self.vertices)} vertices, mbr={self.mbr!r})"

    # -- measures ----------------------------------------------------------
    def area(self) -> float:
        """Enclosed area."""
        return _signed_area2(self.vertices) / 2.0

    def perimeter(self) -> float:
        """Total boundary length."""
        return sum(a.distance(b) for a, b in self._edges)

    def centroid(self) -> Point:
        """Area centroid."""
        cx = cy = 0.0
        area2 = 0.0
        for a, b in self._edges:
            w = a.x * b.y - b.x * a.y
            area2 += w
            cx += (a.x + b.x) * w
            cy += (a.y + b.y) * w
        return Point(cx / (3.0 * area2), cy / (3.0 * area2))

    def edges(self) -> tuple[tuple[Point, Point], ...]:
        """Boundary edges as ``(start, end)`` vertex pairs, CCW order."""
        return self._edges

    def is_convex(self) -> bool:
        """True when every vertex makes a non-right turn (CCW polygon)."""
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            c = self.vertices[(i + 2) % n]
            if ccw(a, b, c) == -1:
                return False
        return True

    def validate_simple(self) -> None:
        """Raise :class:`GeometryError` if any two non-adjacent edges meet."""
        n = len(self._edges)
        for i in range(n):
            a1, a2 = self._edges[i]
            for j in range(i + 1, n):
                if j == i or (j + 1) % n == i or (i + 1) % n == j:
                    continue
                b1, b2 = self._edges[j]
                if segments_properly_intersect(a1, a2, b1, b2) or (
                    on_segment(a1, a2, b1)
                    or on_segment(a1, a2, b2)
                    or on_segment(b1, b2, a1)
                    or on_segment(b1, b2, a2)
                ):
                    raise GeometryError(
                        f"polygon is not simple: edges {i} and {j} intersect"
                    )

    # -- containment -----------------------------------------------------------
    def on_boundary(self, p: Point) -> bool:
        """True when ``p`` lies on the polygon boundary (within tolerance)."""
        if not self.mbr.expanded(EPS).contains_point(p):
            return False
        return any(on_segment(a, b, p) for a, b in self._edges)

    def contains(self, p: Point) -> bool:
        """Strict interior test: boundary points return ``False``."""
        if not self.mbr.contains_point(p):
            return False
        if self.on_boundary(p):
            return False
        return self._crossing_number_odd(p)

    def contains_or_boundary(self, p: Point) -> bool:
        """True when ``p`` is inside or on the boundary."""
        if not self.mbr.contains_point(p):
            return False
        if self.on_boundary(p):
            return True
        return self._crossing_number_odd(p)

    def _crossing_number_odd(self, p: Point) -> bool:
        """Even-odd ray cast with a horizontal ray to ``+x``.

        Assumes ``p`` is not on the boundary; uses the half-open edge
        rule so vertices on the ray are counted exactly once.
        """
        inside = False
        for a, b in self._edges:
            if (a.y > p.y) != (b.y > p.y):
                x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if x_cross > p.x:
                    inside = not inside
        return inside

    # -- visibility kernel -------------------------------------------------------
    def crosses_interior(self, a: Point, b: Point) -> bool:
        """True when the open segment ``ab`` intersects the interior.

        Grazing contact — running along an edge, touching a vertex or a
        boundary point — does **not** count.  The test gathers every
        parameter where ``ab`` meets the boundary, then checks the
        midpoint of each resulting sub-interval for strict containment.
        A strictly-interior proper crossing short-circuits to ``True``.
        """
        # Fast rejection on the MBR.
        seg_rect = Rect(
            min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y)
        )
        if not self.mbr.intersects(seg_rect):
            return False

        params: list[float] = [0.0, 1.0]
        hit_boundary = False
        for e1, e2 in self._edges:
            ts = segment_intersection_params(a, b, e1, e2)
            if ts:
                hit_boundary = True
                params.extend(ts)
        if not hit_boundary:
            # Either fully outside or fully inside: decide by midpoint.
            return self.contains(midpoint(a, b))
        params.sort()
        prev = params[0]
        for t in params[1:]:
            if t - prev > EPS:
                tm = (prev + t) / 2.0
                m = Point(a.x + tm * (b.x - a.x), a.y + tm * (b.y - a.y))
                if self.contains(m):
                    return True
            prev = t
        return False

    # -- metrics -----------------------------------------------------------------
    def distance_to_point(self, p: Point) -> float:
        """Distance from ``p`` to the polygon (0 when inside or on it)."""
        if self.contains_or_boundary(p):
            return 0.0
        return min(point_segment_distance(p, a, b) for a, b in self._edges)

    def boundary_point_at(self, s: float) -> Point:
        """The point at arc-length fraction ``s`` in ``[0, 1)`` along the
        boundary, measured CCW from the first vertex."""
        if not 0.0 <= s < 1.0:
            s = s % 1.0
        target = s * self.perimeter()
        walked = 0.0
        for a, b in self._edges:
            step = a.distance(b)
            if walked + step >= target or (a, b) == self._edges[-1]:
                frac = 0.0 if step == 0.0 else (target - walked) / step
                frac = max(0.0, min(1.0, frac))
                return Point(a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y))
            walked += step
        return self.vertices[0]


def _signed_area2(vertices: Iterable[Point]) -> float:
    """Twice the signed area (positive for CCW order)."""
    verts = list(vertices)
    total = 0.0
    n = len(verts)
    for i in range(n):
        a = verts[i]
        b = verts[(i + 1) % n]
        total += a.x * b.y - b.x * a.y
    return total
