"""Segment predicates: orientation, incidence and intersection.

These predicates are the robustness-critical kernel of the visibility
machinery.  Orientation uses a *relative* epsilon (proportional to the
product of the arm lengths), so the collinearity decision is a bound on
the sine of the angle rather than on an absolute area, which keeps the
predicates scale-invariant across universe sizes.
"""

from __future__ import annotations

import math

from repro.geometry.constants import EPS
from repro.geometry.point import Point

#: Orientation constants returned by :func:`ccw`.
CCW = 1
CW = -1
COLLINEAR = 0


def cross(o: Point, a: Point, b: Point) -> float:
    """Cross product of vectors ``o->a`` and ``o->b`` (signed area x2)."""
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)


def ccw(a: Point, b: Point, c: Point) -> int:
    """Orientation of the ordered triple ``(a, b, c)``.

    Returns :data:`CCW` for a left turn, :data:`CW` for a right turn and
    :data:`COLLINEAR` when the points are collinear within tolerance.
    The tolerance is scale-invariant (``|sin(angle)| <= EPS``), compared
    in squared form to avoid square roots on this hot path.
    """
    abx = b.x - a.x
    aby = b.y - a.y
    acx = c.x - a.x
    acy = c.y - a.y
    area2 = abx * acy - aby * acx
    tol_sq = (EPS * EPS) * (abx * abx + aby * aby) * (acx * acx + acy * acy)
    if area2 * area2 <= tol_sq:
        return COLLINEAR
    if area2 > 0.0:
        return CCW
    return CW


def on_segment(a: Point, b: Point, p: Point) -> bool:
    """True when ``p`` lies on the closed segment ``ab`` (within tolerance)."""
    if ccw(a, b, p) != COLLINEAR:
        return False
    seg_len = math.hypot(b.x - a.x, b.y - a.y)
    tol = EPS * (seg_len + 1.0)
    return (
        min(a.x, b.x) - tol <= p.x <= max(a.x, b.x) + tol
        and min(a.y, b.y) - tol <= p.y <= max(a.y, b.y) + tol
    )


def segments_properly_intersect(p1: Point, p2: Point, p3: Point, p4: Point) -> bool:
    """True when open segments ``p1p2`` and ``p3p4`` cross at a single
    interior point of both (no endpoint touching, no collinear overlap)."""
    d1 = ccw(p3, p4, p1)
    d2 = ccw(p3, p4, p2)
    d3 = ccw(p1, p2, p3)
    d4 = ccw(p1, p2, p4)
    return d1 * d2 < 0 and d3 * d4 < 0


def segments_intersect(p1: Point, p2: Point, p3: Point, p4: Point) -> bool:
    """True when the closed segments share at least one point."""
    if segments_properly_intersect(p1, p2, p3, p4):
        return True
    return (
        on_segment(p3, p4, p1)
        or on_segment(p3, p4, p2)
        or on_segment(p1, p2, p3)
        or on_segment(p1, p2, p4)
    )


def segment_intersection_point(
    p1: Point, p2: Point, p3: Point, p4: Point
) -> Point | None:
    """Intersection point of the closed segments, or ``None``.

    For collinear overlaps an arbitrary shared point is returned.
    """
    params = segment_intersection_params(p1, p2, p3, p4)
    if not params:
        return None
    t = params[0]
    return Point(p1.x + t * (p2.x - p1.x), p1.y + t * (p2.y - p1.y))


def segment_intersection_params(
    a: Point, b: Point, c: Point, d: Point
) -> list[float]:
    """Parameters ``t`` in ``[0, 1]`` along ``ab`` where ``ab`` meets ``cd``.

    Returns an empty list when the segments are disjoint, a single
    parameter for a point intersection, and the two endpoints of the
    shared sub-segment (sorted) for a collinear overlap.  This is the
    kernel of the interval-based "does a segment cross a polygon
    interior" test in :class:`repro.geometry.polygon.Polygon`.
    """
    rx, ry = b.x - a.x, b.y - a.y
    sx, sy = d.x - c.x, d.y - c.y
    denom = rx * sy - ry * sx
    qpx, qpy = c.x - a.x, c.y - a.y
    r_len = math.hypot(rx, ry)
    s_len = math.hypot(sx, sy)
    tol = EPS * (r_len * s_len + 1.0)
    if abs(denom) > tol:
        # Lines cross at a single point; check it lies on both segments.
        t = (qpx * sy - qpy * sx) / denom
        u = (qpx * ry - qpy * rx) / denom
        t_tol = EPS * (1.0 + 1.0 / (r_len + EPS))
        u_tol = EPS * (1.0 + 1.0 / (s_len + EPS))
        if -t_tol <= t <= 1.0 + t_tol and -u_tol <= u <= 1.0 + u_tol:
            return [min(1.0, max(0.0, t))]
        return []
    # Parallel.  If not collinear, no intersection.
    if abs(qpx * ry - qpy * rx) > EPS * (math.hypot(qpx, qpy) * r_len + 1.0):
        return []
    if r_len <= EPS:
        # ``ab`` is a degenerate point; report t=0 if it lies on cd.
        if on_segment(c, d, a):
            return [0.0]
        return []
    # Collinear: project c and d onto ab's parameter space.
    r_sq = rx * rx + ry * ry
    t0 = (qpx * rx + qpy * ry) / r_sq
    t1 = ((d.x - a.x) * rx + (d.y - a.y) * ry) / r_sq
    lo, hi = min(t0, t1), max(t0, t1)
    lo = max(lo, 0.0)
    hi = min(hi, 1.0)
    if lo > hi + EPS:
        return []
    if hi - lo <= EPS:
        return [lo]
    return [lo, hi]


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Minimum distance from point ``p`` to the closed segment ``ab``."""
    abx, aby = b.x - a.x, b.y - a.y
    ab_sq = abx * abx + aby * aby
    if ab_sq == 0.0:
        return p.distance(a)
    t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / ab_sq
    t = max(0.0, min(1.0, t))
    cx, cy = a.x + t * abx, a.y + t * aby
    return math.hypot(p.x - cx, p.y - cy)
