"""Euclidean range search: the candidate generator of OR and ODJ.

For point entities the R-tree filter is exact (a zero-extent MBR
intersects the disk iff the point is within range).  For polygonal
obstacles the filter step returns MBR hits which are refined against
the actual polygon (paper Sec. 2.1's filter/refinement discussion).
"""

from __future__ import annotations

from typing import Any

from repro.errors import QueryError
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.rstar import RStarTree
from repro.model import Obstacle


def range_query(tree: RStarTree, region: Rect | Circle) -> list[Any]:
    """Data payloads whose MBR intersects ``region`` (filter step only)."""
    if isinstance(region, Rect):
        return [e.data for e in tree.iter_rect(region)]
    if isinstance(region, Circle):
        return [e.data for e in tree.search_circle(region)]
    raise QueryError(f"unsupported region type: {type(region).__name__}")


def entities_in_range(tree: RStarTree, q: Point, e: float) -> list[Point]:
    """Entities within Euclidean distance ``e`` of ``q`` (exact).

    This is the set ``P'`` of paper Fig. 5 — a superset of the
    obstructed range result by the Euclidean lower-bound property.
    """
    if e < 0:
        raise QueryError(f"negative range: {e}")
    return [entry.data for entry in tree.search_circle(Circle(q, e))]


def obstacles_in_range(tree: RStarTree, q: Point, e: float) -> list[Obstacle]:
    """Obstacles intersecting the disk ``(q, e)`` (filtered and refined).

    This is the set ``O'`` of relevant obstacles: by the Euclidean
    lower-bound argument of paper Sec. 3, obstacles outside the disk
    cannot affect any path of length <= ``e`` from ``q``.
    """
    if e < 0:
        raise QueryError(f"negative range: {e}")
    circle = Circle(q, e)
    result = []
    for entry in tree.search_circle(circle):
        obstacle: Obstacle = entry.data
        if circle.intersects_polygon(obstacle.polygon):
            result.append(obstacle)
    return result
