"""R-tree distance join [BKS93] — the candidate generator of ODJ.

Both trees are traversed synchronously: a pair of nodes is expanded
only when the MINDIST of their MBRs is within the join distance, which
prunes the vast majority of the cross product.  Leaf/leaf pairs use a
plane-sweep along x instead of the naive nested loop, the optimisation
recommended in the original paper.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import QueryError
from repro.geometry.rect import Rect
from repro.index.node import Node
from repro.index.rstar import RStarTree


def distance_join(
    tree_s: RStarTree,
    tree_t: RStarTree,
    e: float,
    on_pair: Callable[[Any, Any, float], None] | None = None,
) -> list[tuple[Any, Any, float]]:
    """All pairs ``(s, t)`` with Euclidean MBR distance <= ``e``.

    For point payloads (zero-extent MBRs) the MBR distance *is* the
    point distance, so the result is exact.  ``on_pair`` may be given to
    consume pairs without materialising the result list (the list is
    still returned, empty, in that case).
    """
    if e < 0:
        raise QueryError(f"negative join distance: {e}")
    result: list[tuple[Any, Any, float]] = []
    sink = on_pair if on_pair is not None else (
        lambda s, t, d: result.append((s, t, d))
    )
    if len(tree_s) == 0 or len(tree_t) == 0:
        return result
    stack = [(tree_s.root_id, tree_t.root_id)]
    while stack:
        sid, tid = stack.pop()
        node_s = tree_s.read_node(sid)
        node_t = tree_t.read_node(tid)
        if node_s.is_leaf and node_t.is_leaf:
            _sweep_leaf_pair(node_s, node_t, e, sink)
        elif node_s.is_leaf:
            for et in node_t.entries:
                if et.rect.mindist_rect(node_s.mbr()) <= e:
                    stack.append((sid, et.child))
        elif node_t.is_leaf:
            for es in node_s.entries:
                if es.rect.mindist_rect(node_t.mbr()) <= e:
                    stack.append((es.child, tid))
        else:
            # Descend both trees; prune child pairs by MINDIST.
            for es in node_s.entries:
                for et in node_t.entries:
                    if es.rect.mindist_rect(et.rect) <= e:
                        stack.append((es.child, et.child))
    return result


def _sweep_leaf_pair(
    node_s: Node,
    node_t: Node,
    e: float,
    sink: Callable[[Any, Any, float], None],
) -> None:
    """Plane sweep over two leaves: sort by minx, scan a sliding window."""
    left = sorted(node_s.entries, key=lambda en: en.rect.minx)
    right = sorted(node_t.entries, key=lambda en: en.rect.minx)
    for es in left:
        lo = es.rect.minx - e
        hi = es.rect.maxx + e
        for et in right:
            if et.rect.minx > hi:
                break
            if et.rect.maxx < lo:
                continue
            d = es.rect.mindist_rect(et.rect)
            if d <= e:
                sink(es.data, et.data, d)


def intersection_join(
    tree_s: RStarTree, tree_t: RStarTree
) -> list[tuple[Any, Any]]:
    """All pairs with intersecting MBRs — the ``e = 0`` special case
    the paper notes in Sec. 2.1."""
    return [(s, t) for s, t, __ in distance_join(tree_s, tree_t, 0.0)]


def _mindist_rects(a: Rect, b: Rect) -> float:
    """Kept as a seam for tests; identical to ``Rect.mindist_rect``."""
    return a.mindist_rect(b)
