"""Euclidean query processing on R-trees (paper Sec. 2.1).

These are the classical algorithms the obstacle framework uses as its
candidate generators: range search, the best-first incremental nearest
neighbour of Hjaltason & Samet [HS99], the R-tree distance join of
Brinkhoff et al. [BKS93] and the incremental closest-pair algorithm of
[HS98]/[CMTV00].  Every algorithm reads nodes through the tree's
counted buffer, so the paper's I/O metric falls out for free.
"""

from repro.euclidean.range import entities_in_range, obstacles_in_range, range_query
from repro.euclidean.nearest import IncrementalNearestNeighbors, k_nearest
from repro.euclidean.join import distance_join
from repro.euclidean.closest import IncrementalClosestPairs, k_closest_pairs

__all__ = [
    "entities_in_range",
    "obstacles_in_range",
    "range_query",
    "IncrementalNearestNeighbors",
    "k_nearest",
    "distance_join",
    "IncrementalClosestPairs",
    "k_closest_pairs",
]
