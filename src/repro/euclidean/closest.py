"""Incremental closest pairs over two R-trees [HS98, CMTV00].

OCP (paper Fig. 11) pulls Euclidean closest pairs one at a time until
the next pair's Euclidean distance exceeds the obstructed-distance
threshold, so the algorithm must be incremental.  The priority queue
holds node/node, node/data and data/data combinations keyed by the
MINDIST lower bound of the pair; when a data/data pair surfaces, its
distance is exact and no other combination can produce a closer pair.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Iterator

from repro.errors import QueryError
from repro.geometry.rect import Rect
from repro.index.rstar import RStarTree

_NODE = 0
_DATA = 1


class IncrementalClosestPairs:
    """An iterator yielding ``(s, t, distance)`` in ascending distance.

    Expansion strategy: for node/node combinations the node with the
    larger MBR area is expanded (the heuristic of [CMTV00]); node/data
    combinations expand the node side.
    """

    def __init__(self, tree_s: RStarTree, tree_t: RStarTree) -> None:
        self._s = tree_s
        self._t = tree_t
        self._tiebreak = count()
        # Heap items: (dist, tb, s_kind, s_payload, s_rect, t_kind, t_payload, t_rect)
        self._heap: list[tuple] = []
        if len(tree_s) > 0 and len(tree_t) > 0:
            root_s = tree_s.read_node(tree_s.root_id)
            root_t = tree_t.read_node(tree_t.root_id)
            s_rect = root_s.mbr()
            t_rect = root_t.mbr()
            self._push(
                _NODE, tree_s.root_id, s_rect, _NODE, tree_t.root_id, t_rect
            )

    def _push(
        self,
        s_kind: int,
        s_payload: Any,
        s_rect: Rect,
        t_kind: int,
        t_payload: Any,
        t_rect: Rect,
    ) -> None:
        dist = s_rect.mindist_rect(t_rect)
        heapq.heappush(
            self._heap,
            (dist, next(self._tiebreak), s_kind, s_payload, s_rect, t_kind, t_payload, t_rect),
        )

    def __iter__(self) -> Iterator[tuple[Any, Any, float]]:
        return self

    def __next__(self) -> tuple[Any, Any, float]:
        while self._heap:
            dist, __, s_kind, s_pay, s_rect, t_kind, t_pay, t_rect = heapq.heappop(
                self._heap
            )
            if s_kind == _DATA and t_kind == _DATA:
                return s_pay, t_pay, dist
            if s_kind == _NODE and t_kind == _NODE:
                if s_rect.area() >= t_rect.area():
                    node = self._s.read_node(s_pay)
                    for e in node.entries:
                        kind = _DATA if node.is_leaf else _NODE
                        payload = e.data if node.is_leaf else e.child
                        self._push(kind, payload, e.rect, t_kind, t_pay, t_rect)
                else:
                    node = self._t.read_node(t_pay)
                    for e in node.entries:
                        kind = _DATA if node.is_leaf else _NODE
                        payload = e.data if node.is_leaf else e.child
                        self._push(s_kind, s_pay, s_rect, kind, payload, e.rect)
            elif s_kind == _NODE:
                node = self._s.read_node(s_pay)
                for e in node.entries:
                    kind = _DATA if node.is_leaf else _NODE
                    payload = e.data if node.is_leaf else e.child
                    self._push(kind, payload, e.rect, t_kind, t_pay, t_rect)
            else:
                node = self._t.read_node(t_pay)
                for e in node.entries:
                    kind = _DATA if node.is_leaf else _NODE
                    payload = e.data if node.is_leaf else e.child
                    self._push(s_kind, s_pay, s_rect, kind, payload, e.rect)
        raise StopIteration


def k_closest_pairs(
    tree_s: RStarTree, tree_t: RStarTree, k: int
) -> list[tuple[Any, Any, float]]:
    """The ``k`` Euclidean closest pairs as ``(s, t, distance)``."""
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    stream = IncrementalClosestPairs(tree_s, tree_t)
    result = []
    for pair in stream:
        result.append(pair)
        if len(result) == k:
            break
    return result
