"""Incremental closest pairs over two R-trees [HS98, CMTV00].

OCP (paper Fig. 11) pulls Euclidean closest pairs one at a time until
the next pair's Euclidean distance exceeds the obstructed-distance
threshold, so the algorithm must be incremental.  Like the
nearest-neighbour iterator, it is a parameterization of the shared
best-first skeleton (:func:`repro.runtime.skeletons.best_first`): the
queue holds node/node, node/data and data/data combinations keyed by
the MINDIST lower bound of the pair; a data/data combination is a
*final* item — its distance is exact and no other combination can
produce a closer pair.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import QueryError
from repro.geometry.rect import Rect
from repro.index.rstar import RStarTree
from repro.runtime.skeletons import best_first, take

_NODE = 0
_DATA = 1

#: Internal payload: (s_kind, s_payload, s_rect, t_kind, t_payload, t_rect)
_Combo = tuple[int, Any, Rect, int, Any, Rect]


class IncrementalClosestPairs:
    """An iterator yielding ``(s, t, distance)`` in ascending distance.

    Expansion strategy: for node/node combinations the node with the
    larger MBR area is expanded (the heuristic of [CMTV00]); node/data
    combinations expand the node side.
    """

    def __init__(self, tree_s: RStarTree, tree_t: RStarTree) -> None:
        self._s = tree_s
        self._t = tree_t
        seeds = []
        if len(tree_s) > 0 and len(tree_t) > 0:
            s_rect = tree_s.read_node(tree_s.root_id).mbr()
            t_rect = tree_t.read_node(tree_t.root_id).mbr()
            combo: _Combo = (
                _NODE, tree_s.root_id, s_rect, _NODE, tree_t.root_id, t_rect
            )
            seeds.append((s_rect.mindist_rect(t_rect), False, combo))
        self._stream = best_first(seeds, self._expand)

    def _expand(self, combo: _Combo):
        s_kind, s_pay, s_rect, t_kind, t_pay, t_rect = combo
        # Pick the side to open: the larger node of a node/node pair,
        # otherwise whichever side still is a node.
        if s_kind == _NODE and (
            t_kind == _DATA or s_rect.area() >= t_rect.area()
        ):
            node = self._s.read_node(s_pay)
            for e in node.entries:
                kind = _DATA if node.is_leaf else _NODE
                payload = e.data if node.is_leaf else e.child
                yield self._item(kind, payload, e.rect, t_kind, t_pay, t_rect)
        else:
            node = self._t.read_node(t_pay)
            for e in node.entries:
                kind = _DATA if node.is_leaf else _NODE
                payload = e.data if node.is_leaf else e.child
                yield self._item(s_kind, s_pay, s_rect, kind, payload, e.rect)

    @staticmethod
    def _item(
        s_kind: int, s_pay: Any, s_rect: Rect,
        t_kind: int, t_pay: Any, t_rect: Rect,
    ):
        dist = s_rect.mindist_rect(t_rect)
        final = s_kind == _DATA and t_kind == _DATA
        combo: _Combo = (s_kind, s_pay, s_rect, t_kind, t_pay, t_rect)
        return dist, final, combo

    def __iter__(self) -> Iterator[tuple[Any, Any, float]]:
        return self

    def __next__(self) -> tuple[Any, Any, float]:
        combo, dist = next(self._stream)
        return combo[1], combo[4], dist


def k_closest_pairs(
    tree_s: RStarTree, tree_t: RStarTree, k: int
) -> list[tuple[Any, Any, float]]:
    """The ``k`` Euclidean closest pairs as ``(s, t, distance)``."""
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    return take(IncrementalClosestPairs(tree_s, tree_t), k)
