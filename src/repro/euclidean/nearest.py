"""Best-first incremental nearest-neighbour search [HS99].

The ONN algorithm (paper Fig. 9) requires *incremental* retrieval: it
keeps pulling the next Euclidean neighbour until the Euclidean distance
exceeds the shrinking obstructed-distance threshold ``d_Emax``.  The
iterator below is the classic optimal algorithm: a priority queue over
both node MBRs (keyed by MINDIST) and data entries (keyed by actual
distance), which reports neighbours in exact ascending distance order.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Iterator

from repro.errors import QueryError
from repro.geometry.point import Point
from repro.index.rstar import RStarTree


class IncrementalNearestNeighbors:
    """An iterator yielding ``(data, distance)`` in ascending distance.

    The queue mixes two kinds of items distinguished by a flag: R-tree
    nodes (prioritised by MINDIST of their MBR, a lower bound for every
    data item beneath them) and data entries (prioritised by their true
    distance).  When a data entry reaches the queue front, no unexplored
    subtree can contain anything closer, so it is emitted.
    """

    def __init__(self, tree: RStarTree, q: Point) -> None:
        self._tree = tree
        self._q = q
        self._tiebreak = count()
        self._heap: list[tuple[float, int, bool, Any]] = []
        if len(tree) > 0:
            root = tree.read_node(tree.root_id)
            self._push_node_entries(root)

    def _push_node_entries(self, node: Any) -> None:
        q = self._q
        for entry in node.entries:
            if node.is_leaf:
                dist = entry.rect.mindist_point(q)
                heapq.heappush(
                    self._heap, (dist, next(self._tiebreak), True, entry.data)
                )
            else:
                dist = entry.rect.mindist_point(q)
                heapq.heappush(
                    self._heap, (dist, next(self._tiebreak), False, entry.child)
                )

    def __iter__(self) -> Iterator[tuple[Any, float]]:
        return self

    def __next__(self) -> tuple[Any, float]:
        while self._heap:
            dist, __, is_data, payload = heapq.heappop(self._heap)
            if is_data:
                return payload, dist
            self._push_node_entries(self._tree.read_node(payload))
        raise StopIteration


def k_nearest(tree: RStarTree, q: Point, k: int) -> list[tuple[Any, float]]:
    """The ``k`` nearest data items to ``q`` as ``(data, distance)`` pairs.

    Returns fewer than ``k`` pairs when the tree holds fewer items.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    stream = IncrementalNearestNeighbors(tree, q)
    result = []
    for item in stream:
        result.append(item)
        if len(result) == k:
            break
    return result
