"""Best-first incremental nearest-neighbour search [HS99].

The ONN algorithm (paper Fig. 9) requires *incremental* retrieval: it
keeps pulling the next Euclidean neighbour until the Euclidean distance
exceeds the shrinking obstructed-distance threshold ``d_Emax``.  The
iterator below is the classic optimal algorithm — a priority queue over
both node MBRs (keyed by MINDIST) and data entries (keyed by actual
distance) — expressed as a parameterization of the shared best-first
skeleton (:func:`repro.runtime.skeletons.best_first`): R-tree nodes
are *internal* items whose MINDIST lower-bounds everything beneath
them, data entries are *final* items reported in exact ascending
distance order.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import QueryError
from repro.geometry.point import Point
from repro.index.rstar import RStarTree
from repro.runtime.skeletons import best_first, take


class IncrementalNearestNeighbors:
    """An iterator yielding ``(data, distance)`` in ascending distance.

    A parameterization of the shared best-first skeleton: seeds are
    the root node (lower bound 0), expansion reads one R-tree node and
    emits its entries — final data items for leaves, internal child
    nodes otherwise.  When a data entry reaches the queue front, no
    unexplored subtree can contain anything closer, so it is emitted.
    """

    def __init__(self, tree: RStarTree, q: Point) -> None:
        self._tree = tree
        self._q = q
        seeds = [(0.0, False, tree.root_id)] if len(tree) > 0 else []
        self._stream = best_first(seeds, self._expand)

    def _expand(self, page_id: int):
        node = self._tree.read_node(page_id)
        q = self._q
        for entry in node.entries:
            dist = entry.rect.mindist_point(q)
            if node.is_leaf:
                yield dist, True, entry.data
            else:
                yield dist, False, entry.child

    def __iter__(self) -> Iterator[tuple[Any, float]]:
        return self

    def __next__(self) -> tuple[Any, float]:
        return next(self._stream)


def k_nearest(tree: RStarTree, q: Point, k: int) -> list[tuple[Any, float]]:
    """The ``k`` nearest data items to ``q`` as ``(data, distance)`` pairs.

    Returns fewer than ``k`` pairs when the tree holds fewer items.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    return take(IncrementalNearestNeighbors(tree, q), k)
