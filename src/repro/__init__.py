"""repro — Spatial Queries in the Presence of Obstacles.

A complete reproduction of Zhang, Papadias, Mouratidis & Zhu,
*Spatial Queries in the Presence of Obstacles*, EDBT 2004: obstructed
range search, nearest neighbours, e-distance joins and closest pairs
over R*-tree-indexed entities and polygonal obstacles, built on local
visibility graphs constructed on-line.

Quickstart::

    from repro import ObstacleDatabase, Point, Rect

    db = ObstacleDatabase([Rect(2, 2, 4, 8)])        # obstacles
    db.add_entity_set("cafes", [Point(5, 5), Point(0, 5)])
    db.nearest("cafes", Point(1, 5), k=1)            # obstructed 1-NN

Architecture: every query runs through the unified query runtime
(:mod:`repro.runtime`) — a per-database
:class:`~repro.runtime.context.QueryContext` owning a persistent,
versioned LRU cache of local visibility graphs, a metric abstraction
(:class:`~repro.runtime.metric.ObstructedMetric` /
:class:`~repro.runtime.metric.EuclideanMetric`) over shared,
metric-parameterized query skeletons, dynamic obstacle updates with
lazy version-based invalidation
(:meth:`~repro.core.engine.ObstacleDatabase.insert_obstacle`), and
batch entry points
(:meth:`~repro.core.engine.ObstacleDatabase.batch_nearest`,
:meth:`~repro.core.engine.ObstacleDatabase.batch_range`) that amortize
one context across whole workloads.  The serving tier
(:mod:`repro.serve`) layers a persistent snapshot-warm-started worker
pool, an asyncio microbatching front-end, and continuous query
subscriptions for moving clients on top of the same runtime.
"""

from repro.errors import (
    DatasetError,
    GeometryError,
    QueryError,
    ReproError,
    SpatialIndexError,
    UnreachableError,
)
from repro.geometry import Circle, Point, Polygon, Rect
from repro.model import Obstacle
from repro.index import RStarTree, str_pack, hilbert_index
from repro.visibility import (
    VisibilityBackend,
    VisibilityGraph,
    available_backends,
    default_backend_name,
    resolve_backend,
    shortest_path,
    shortest_path_dist,
)
from repro.visibility.tangent import prune_to_tangent
from repro.core.continuous import NNInterval, PathNearestNeighbor, path_nearest
from repro.render import save_svg, scene_to_svg
from repro.runtime import (
    EuclideanMetric,
    ObstructedMetric,
    QueryContext,
    RuntimeStats,
    VisibilityGraphCache,
)
from repro.persist import load_database, save_database, snapshot_info
from repro.core import (
    CompositeObstacleIndex,
    ObstacleDatabase,
    ObstacleIndex,
    ObstructedDistanceComputer,
    compute_obstructed_distance,
    iter_obstacle_closest_pairs,
    iter_obstacle_nearest,
    obstacle_closest_pairs,
    obstacle_distance_join,
    obstacle_nearest,
    obstacle_range,
    obstacle_semijoin,
)
from repro.serve import (
    ContinuousQueryHub,
    LatencyHistogram,
    PersistentWorkerPool,
    QueryServer,
    ResultDelta,
    ServeStats,
    Subscription,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "GeometryError",
    "SpatialIndexError",
    "DatasetError",
    "QueryError",
    "UnreachableError",
    # geometry & model
    "Point",
    "Rect",
    "Polygon",
    "Circle",
    "Obstacle",
    # index
    "RStarTree",
    "str_pack",
    "hilbert_index",
    # visibility
    "VisibilityBackend",
    "VisibilityGraph",
    "available_backends",
    "default_backend_name",
    "resolve_backend",
    "shortest_path",
    "shortest_path_dist",
    "prune_to_tangent",
    # extensions
    "NNInterval",
    "PathNearestNeighbor",
    "path_nearest",
    "scene_to_svg",
    "save_svg",
    # persistence
    "save_database",
    "load_database",
    "snapshot_info",
    # query runtime
    "QueryContext",
    "RuntimeStats",
    "VisibilityGraphCache",
    "EuclideanMetric",
    "ObstructedMetric",
    # core queries
    "ObstacleDatabase",
    "ObstacleIndex",
    "CompositeObstacleIndex",
    "ObstructedDistanceComputer",
    "compute_obstructed_distance",
    "obstacle_range",
    "obstacle_nearest",
    "iter_obstacle_nearest",
    "obstacle_distance_join",
    "obstacle_closest_pairs",
    "iter_obstacle_closest_pairs",
    "obstacle_semijoin",
    # serving tier
    "PersistentWorkerPool",
    "QueryServer",
    "ContinuousQueryHub",
    "Subscription",
    "ResultDelta",
    "ServeStats",
    "LatencyHistogram",
]
