"""Shortest paths over visibility graphs.

Plain binary-heap Dijkstra [D59] — exactly what the paper applies to
its local graphs — plus a bounded variant used by the OR algorithm's
single shared expansion (Fig. 5) and by ODJ's per-seed elimination.
"""

from __future__ import annotations

import heapq
from itertools import count
from math import inf
from typing import Iterable

from repro.geometry.point import Point
from repro.visibility.graph import VisibilityGraph


def dijkstra(
    graph: VisibilityGraph,
    source: Point,
    *,
    bound: float = inf,
    targets: Iterable[Point] | None = None,
) -> dict[Point, float]:
    """Distances from ``source`` to settled nodes.

    Expansion stops beyond ``bound`` and, when ``targets`` is given, as
    soon as every target has been settled (or proven unreachable within
    the bound).  Unreached nodes are absent from the result.
    """
    if not graph.has_node(source):
        return {}
    remaining = set(targets) if targets is not None else None
    dist: dict[Point, float] = {}
    # Best tentative distance per pushed node.  A relaxation that does
    # not strictly improve on it is dominated — the cheaper entry is
    # already in the heap — so it is never pushed, and any entry popped
    # above the tentative value is stale and skipped.  Settled values
    # are unchanged (the minimum relaxation is always pushed); only the
    # heap traffic shrinks, from one entry per relaxation to one per
    # strict improvement.
    best: dict[Point, float] = {source: 0.0}
    tiebreak = count()
    heap: list[tuple[float, int, Point]] = [(0.0, next(tiebreak), source)]
    while heap:
        d, __, node = heapq.heappop(heap)
        if node in dist or d > best.get(node, -inf):
            continue
        if d > bound:
            break
        dist[node] = d
        if remaining is not None:
            remaining.discard(node)
            if not remaining:
                break
        for nbr, w in graph.neighbors(node).items():
            if nbr not in dist:
                nd = d + w
                if nd <= bound and nd < best.get(nbr, inf):
                    best[nbr] = nd
                    heapq.heappush(heap, (nd, next(tiebreak), nbr))
    return dist


def bounded_dijkstra(
    graph: VisibilityGraph, source: Point, bound: float
) -> dict[Point, float]:
    """All nodes within obstructed distance ``bound`` of ``source``."""
    return dijkstra(graph, source, bound=bound)


def shortest_path_dist(graph: VisibilityGraph, source: Point, target: Point) -> float:
    """Obstructed distance between two nodes (``inf`` when disconnected)."""
    if source == target:
        return 0.0
    if not graph.has_node(source) or not graph.has_node(target):
        return inf
    dist = dijkstra(graph, source, targets=[target])
    return dist.get(target, inf)


def shortest_path(
    graph: VisibilityGraph, source: Point, target: Point
) -> tuple[float, list[Point]]:
    """Distance and one shortest node sequence from ``source`` to ``target``.

    Returns ``(inf, [])`` when no obstacle-avoiding path exists in the
    graph.
    """
    if source == target:
        return 0.0, [source]
    if not graph.has_node(source) or not graph.has_node(target):
        return inf, []
    settled: set[Point] = set()
    best: dict[Point, float] = {source: 0.0}
    parent: dict[Point, Point] = {}
    tiebreak = count()
    heap: list[tuple[float, int, Point]] = [(0.0, next(tiebreak), source)]
    while heap:
        d, __, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            break
        for nbr, w in graph.neighbors(node).items():
            if nbr in settled:
                continue
            nd = d + w
            if nd < best.get(nbr, inf):
                best[nbr] = nd
                parent[nbr] = node
                heapq.heappush(heap, (nd, next(tiebreak), nbr))
    if target not in settled:
        return inf, []
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return best[target], path
