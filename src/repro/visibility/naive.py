"""Exact, brute-force visibility — the reference oracle.

Two points are mutually visible iff the open segment between them does
not cross the interior of any obstacle.  This module decides that with
the interval-midpoint method of
:meth:`repro.geometry.polygon.Polygon.crosses_interior`, which is exact
up to the global epsilon even for collinear grazes, boundary entities
and shared grid lines.  The rotational sweep
(:mod:`repro.visibility.sweep`) delegates to this oracle whenever it
meets a degenerate contact, and the property-based tests compare the
two implementations on random scenes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.model import Obstacle


def is_visible(a: Point, b: Point, obstacles: Iterable[Obstacle]) -> bool:
    """True when the open segment ``ab`` avoids every obstacle interior."""
    seg_rect = Rect(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))
    for obs in obstacles:
        if not obs.mbr.intersects(seg_rect):
            continue
        if obs.polygon.crosses_interior(a, b):
            return False
    return True


def naive_visible_from(
    p: Point, targets: Sequence[Point], obstacles: Sequence[Obstacle]
) -> list[Point]:
    """All targets visible from ``p`` — O(|targets| * |obstacle edges|)."""
    return [w for w in targets if w != p and is_visible(p, w, obstacles)]
