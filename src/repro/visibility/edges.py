"""Boundary edges and the rotational sweep's open-edge ordering.

``OpenEdges`` maintains the obstacle edges currently crossed by the
sweep ray, ordered by their intersection distance from the sweep
center.  The closest open edge decides visibility of the current event
point.  The structure follows the classic formulation (a sorted list
with an on-the-fly comparator relative to the current ray), tuned for
the sweep's access pattern:

* the current ray is set once per event (``set_ray``), caching the ray
  direction and memoising each edge's intersection parameter for the
  duration of the event;
* ordering uses the *parametric* distance along the ray (no square
  roots);
* the tie-break angle — needed only when two edges touch the ray at the
  same point, i.e. at a shared vertex — is computed lazily on exact
  ties instead of for every comparison.

Deletions fall back to a linear scan if floating-point noise perturbed
the ordering, so correctness never depends on perfect comparator
consistency.
"""

from __future__ import annotations

import math

from repro.geometry.constants import EPS
from repro.geometry.point import Point


class BoundaryEdge:
    """One obstacle boundary edge, tagged with its obstacle id."""

    __slots__ = ("p1", "p2", "oid")

    def __init__(self, p1: Point, p2: Point, oid: int) -> None:
        self.p1 = p1
        self.p2 = p2
        self.oid = oid

    def has_endpoint(self, p: Point) -> bool:
        """True when ``p`` is one of the edge's endpoints."""
        p1 = self.p1
        if p.x == p1.x and p.y == p1.y:
            return True
        p2 = self.p2
        return p.x == p2.x and p.y == p2.y

    def other(self, p: Point) -> Point:
        """The endpoint that is not ``p``."""
        return self.p2 if p == self.p1 else self.p1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoundaryEdge):
            return NotImplemented
        return self.oid == other.oid and (
            (self.p1 == other.p1 and self.p2 == other.p2)
            or (self.p1 == other.p2 and self.p2 == other.p1)
        )

    def __hash__(self) -> int:
        return hash((self.oid, frozenset((self.p1.as_tuple(), self.p2.as_tuple()))))

    def __repr__(self) -> str:
        return f"BoundaryEdge({self.p1!r}, {self.p2!r}, oid={self.oid})"


def ray_edge_distance(p: Point, w: Point, edge: BoundaryEdge) -> float:
    """Distance from ``p`` to where ray ``p -> w`` meets ``edge``.

    The open-edge invariant guarantees the edge straddles or touches the
    ray; if numeric noise makes them barely miss, the distance to the
    edge endpoint nearest the ray is used, keeping the comparator total.
    """
    param = _ray_edge_param(p.x, p.y, w.x, w.y, edge)
    return param * math.hypot(w.x - p.x, w.y - p.y)


def _ray_edge_param(
    px: float, py: float, wx: float, wy: float, edge: BoundaryEdge
) -> float:
    """Intersection parameter ``t`` (``p + t * (w - p)``) of the ray with
    ``edge``; for (nearly) parallel edges, the closest endpoint's
    projection-free distance ratio keeps the value monotone-compatible."""
    rx, ry = wx - px, wy - py
    e1, e2 = edge.p1, edge.p2
    sx, sy = e2.x - e1.x, e2.y - e1.y
    denom = rx * sy - ry * sx
    r_len_sq = rx * rx + ry * ry
    if denom * denom <= (EPS * EPS) * r_len_sq * (sx * sx + sy * sy) + 1e-300:
        # Edge (nearly) parallel to the ray: closest endpoint wins.
        d1 = math.hypot(e1.x - px, e1.y - py)
        d2 = math.hypot(e2.x - px, e2.y - py)
        return min(d1, d2) / (math.sqrt(r_len_sq) or 1.0)
    qpx, qpy = e1.x - px, e1.y - py
    t = (qpx * sy - qpy * sx) / denom
    u = (qpx * ry - qpy * rx) / denom
    if u < 0.0 or u > 1.0:
        # Clamp to the nearest edge endpoint actually on the segment.
        u = 0.0 if u < 0.0 else 1.0
        ex = e1.x + u * sx - px
        ey = e1.y + u * sy - py
        return math.hypot(ex, ey) / (math.sqrt(r_len_sq) or 1.0)
    if t < 0.0:
        ex = e1.x + u * sx - px
        ey = e1.y + u * sy - py
        return math.hypot(ex, ey) / (math.sqrt(r_len_sq) or 1.0)
    return t


def _tiebreak_angle(p: Point, w: Point, edge: BoundaryEdge) -> float:
    """Tiebreak for edges meeting the ray at the same point.

    Distance ties occur when two edges touch the current ray at a
    shared vertex.  Their order for all *subsequent* sweep angles is
    decided by how sharply each edge bends back toward the center: the
    edge forming the smaller angle (at the on-ray endpoint, between the
    direction back to ``p`` and the edge's direction) stays closer.
    This is the classic open-edge comparator refinement.
    """
    from repro.geometry.segment import CCW, ccw  # local import, cycle-free

    side1 = ccw(p, w, edge.p1)
    side2 = ccw(p, w, edge.p2)
    if side1 == CCW and side2 != CCW:
        ahead, base = edge.p1, edge.p2
    elif side2 == CCW and side1 != CCW:
        ahead, base = edge.p2, edge.p1
    else:
        # Degenerate (both endpoints ahead/behind): deterministic fallback.
        ahead, base = edge.p2, edge.p1
    bx, by = p.x - base.x, p.y - base.y
    ax, ay = ahead.x - base.x, ahead.y - base.y
    return abs(math.atan2(bx * ay - by * ax, bx * ax + by * ay))


class OpenEdges:
    """Edges crossing the current sweep ray, nearest first."""

    __slots__ = ("_center", "_edges", "_w", "_params", "_ties")

    def __init__(self, center: Point) -> None:
        self._center = center
        self._edges: list[BoundaryEdge] = []
        self._w: Point | None = None
        self._params: dict[int, float] = {}
        self._ties: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._edges)

    def __bool__(self) -> bool:
        return bool(self._edges)

    def smallest(self) -> BoundaryEdge:
        """The open edge nearest the center along the current ray."""
        return self._edges[0]

    def set_ray(self, w: Point) -> None:
        """Fix the current ray (center -> ``w``) for subsequent ops.

        Resets the per-event memo of edge intersection parameters.
        """
        self._w = w
        self._params.clear()
        self._ties.clear()

    def _param(self, edge: BoundaryEdge) -> float:
        key = id(edge)
        cached = self._params.get(key)
        if cached is None:
            p, w = self._center, self._w
            cached = _ray_edge_param(p.x, p.y, w.x, w.y, edge)  # type: ignore[union-attr]
            self._params[key] = cached
        return cached

    def _less(self, a: BoundaryEdge, b: BoundaryEdge) -> bool:
        pa = self._param(a)
        pb = self._param(b)
        if pa < pb - EPS:
            return True
        if pb < pa - EPS:
            return False
        # Exact tie (shared vertex on the ray): lazy angular tiebreak,
        # memoised for the duration of the event.
        return self._tie(a) < self._tie(b)

    def _tie(self, edge: BoundaryEdge) -> float:
        key = id(edge)
        cached = self._ties.get(key)
        if cached is None:
            cached = _tiebreak_angle(self._center, self._w, edge)  # type: ignore[arg-type]
            self._ties[key] = cached
        return cached

    def insert(self, w: Point, edge: BoundaryEdge) -> None:
        """Insert ``edge`` keeping distance order relative to ray
        ``center -> w`` (``w`` must match the current ``set_ray``)."""
        if self._w is not w:
            self.set_ray(w)
        lo, hi = 0, len(self._edges)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._less(self._edges[mid], edge):
                lo = mid + 1
            else:
                hi = mid
        self._edges.insert(lo, edge)

    def delete(self, w: Point, edge: BoundaryEdge) -> None:
        """Remove ``edge``; tolerant of comparator drift (linear fallback)."""
        if self._w is not w:
            self.set_ray(w)
        lo, hi = 0, len(self._edges)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._less(self._edges[mid], edge):
                lo = mid + 1
            else:
                hi = mid
        # Scan outward from the insertion point for the exact edge.
        n = len(self._edges)
        for offset in range(n):
            for idx in (lo - offset - 1, lo + offset):
                if 0 <= idx < n and self._edges[idx] == edge:
                    del self._edges[idx]
                    return
        # Edge was not present (e.g. never opened) — a harmless no-op.

    def as_list(self) -> list[BoundaryEdge]:
        """Snapshot of the open edges, nearest first."""
        return list(self._edges)
