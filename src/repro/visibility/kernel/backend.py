"""Pluggable visibility backends.

A backend answers one question — "which scene points does ``p`` see" —
for a :class:`~repro.visibility.graph.VisibilityGraph`.  Three named
implementations exist:

``python-sweep``
    The paper's rotational plane sweep [SS84]
    (:mod:`repro.visibility.sweep`), pure python.  Alias: ``sweep``.
``numpy-kernel``
    The vectorized kernel (:mod:`repro.visibility.kernel.numpy_sweep`)
    over a :class:`~repro.visibility.kernel.packed.PackedScene`.
    Requires numpy; returns sets identical to ``python-sweep``.
``naive``
    The exact pairwise oracle (:mod:`repro.visibility.naive`) — slow,
    but valid even for overlapping obstacles; the testing reference.

Selection: pass a name (or a backend instance) to
:class:`~repro.visibility.graph.VisibilityGraph`,
:class:`~repro.runtime.context.QueryContext` or
:class:`~repro.core.engine.ObstacleDatabase`; ``None`` auto-picks the
``REPRO_VISIBILITY_BACKEND`` environment variable when set, otherwise
``numpy-kernel`` when numpy is importable and ``python-sweep`` when it
is not.

Backends carry an optional :class:`~repro.runtime.stats.RuntimeStats`
reference and tick the per-backend sweep counters (``sweeps_run``,
``sweep_events``, ``sweep_seconds``) on every call.
"""

from __future__ import annotations

import os
import time
from importlib.util import find_spec
from typing import Protocol, TYPE_CHECKING, runtime_checkable

from repro.errors import QueryError
from repro.geometry.point import Point
from repro.obs.trace import TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.stats import RuntimeStats
    from repro.visibility.graph import VisibilityGraph

#: Environment variable overriding the auto-picked backend.
AUTO_BACKEND_ENV = "REPRO_VISIBILITY_BACKEND"


@runtime_checkable
class VisibilityBackend(Protocol):
    """What the visibility graph needs from a sweep implementation."""

    name: str

    def visible_from(
        self, p: Point, graph: "VisibilityGraph"
    ) -> list[Point]:
        """All graph nodes visible from ``p``."""


class _TimedBackend:
    """Shared stats plumbing: every sweep ticks the runtime counters."""

    name = "?"

    def __init__(self, stats: "RuntimeStats | None" = None) -> None:
        self.stats = stats

    def visible_from(
        self, p: Point, graph: "VisibilityGraph"
    ) -> list[Point]:
        stats = self.stats
        if stats is None:
            TRACER.count("sweep.run")
            return self._sweep(p, graph)
        t0 = time.perf_counter()
        result = self._sweep(p, graph)
        stats.sweep_seconds += time.perf_counter() - t0
        stats.sweeps_run += 1
        stats.sweep_events += max(graph.node_count - 1, 0)
        TRACER.count("sweep.run")
        TRACER.count("sweep.events", max(graph.node_count - 1, 0))
        return result

    def _sweep(self, p: Point, graph: "VisibilityGraph") -> list[Point]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class PythonSweepBackend(_TimedBackend):
    """The pure-python rotational plane sweep."""

    name = "python-sweep"

    def _sweep(self, p: Point, graph: "VisibilityGraph") -> list[Point]:
        from repro.visibility.sweep import visible_from

        return visible_from(p, graph)


class NumpyKernelBackend(_TimedBackend):
    """The vectorized numpy sweep over a packed scene."""

    name = "numpy-kernel"

    def __init__(self, stats: "RuntimeStats | None" = None) -> None:
        super().__init__(stats)
        from repro.visibility.kernel import numpy_sweep  # may raise

        self._kernel = numpy_sweep.kernel_visible_from

    def _sweep(self, p: Point, graph: "VisibilityGraph") -> list[Point]:
        return self._kernel(p, graph, graph.packed_scene())


class NaiveBackend(_TimedBackend):
    """The exact pairwise oracle over every node pair."""

    name = "naive"

    def _sweep(self, p: Point, graph: "VisibilityGraph") -> list[Point]:
        from repro.visibility.naive import naive_visible_from

        targets = [v for v in graph.nodes() if v != p]
        return naive_visible_from(p, targets, graph.scene_obstacles())


class _StatsAdapter(_TimedBackend):
    """Ticks one stats object around a stats-less backend instance.

    Used when a caller-owned backend (possibly shared across several
    contexts/databases) is resolved with a stats reference: the shared
    instance is left untouched, and each resolution gets its own
    counter plumbing.
    """

    def __init__(self, inner: VisibilityBackend, stats: "RuntimeStats") -> None:
        super().__init__(stats)
        self._inner = inner
        self.name = inner.name

    def _sweep(self, p: Point, graph: "VisibilityGraph") -> list[Point]:
        return self._inner.visible_from(p, graph)


_REGISTRY: dict[str, type[_TimedBackend]] = {
    PythonSweepBackend.name: PythonSweepBackend,
    NumpyKernelBackend.name: NumpyKernelBackend,
    NaiveBackend.name: NaiveBackend,
}

#: Back-compat aliases (the seed's ``VisibilityGraph(method=...)`` names).
_ALIASES = {"sweep": PythonSweepBackend.name}


def available_backends() -> list[str]:
    """Canonical names of every selectable backend."""
    return sorted(_REGISTRY)


def numpy_available() -> bool:
    """True when the numpy kernel's dependency is importable."""
    return find_spec("numpy") is not None


def default_backend_name() -> str:
    """The auto-picked backend: env override, else numpy when present."""
    env = os.environ.get(AUTO_BACKEND_ENV)
    if env:
        name = _ALIASES.get(env, env)
        if name not in _REGISTRY:
            raise QueryError(
                f"unknown visibility backend {env!r} in "
                f"{AUTO_BACKEND_ENV} (expected one of {available_backends()})"
            )
        return name
    return (
        NumpyKernelBackend.name
        if numpy_available()
        else PythonSweepBackend.name
    )


def resolve_backend(
    spec: "str | VisibilityBackend | None" = None,
    *,
    stats: "RuntimeStats | None" = None,
) -> VisibilityBackend:
    """A backend instance from a name, an instance, or ``None`` (auto)."""
    if spec is None:
        spec = default_backend_name()
    if isinstance(spec, str):
        name = _ALIASES.get(spec, spec)
        cls = _REGISTRY.get(name)
        if cls is None:
            raise QueryError(
                f"unknown visibility backend {spec!r} "
                f"(expected one of {available_backends()})"
            )
        try:
            return cls(stats=stats)
        except ImportError as exc:  # numpy missing for numpy-kernel
            raise QueryError(
                f"visibility backend {name!r} is unavailable: {exc}"
            ) from exc
    if stats is not None and getattr(spec, "stats", None) is not stats:
        return _StatsAdapter(spec, stats)
    return spec
