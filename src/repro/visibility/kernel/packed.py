"""`PackedScene` — obstacle geometry flattened into numpy arrays.

The vectorized sweep kernel needs the scene as contiguous arrays, not
as python ``Point``/``BoundaryEdge`` objects.  A ``PackedScene`` keeps
three synchronized groups of buffers:

* **obstacle vertices** — coordinates in capacity-doubled float64
  arrays, deduplicated by exact coordinate (two obstacles sharing a
  vertex share one packed slot, mirroring the graph's node identity);
* **boundary edges** — endpoint *indices* into the vertex arrays plus
  the owning obstacle id, append-only;
* **free points** — entities and query points, in their own arrays
  with O(1) swap-remove deletion (entities are transient: every
  ``QueryContext.distance`` call adds and removes one).

A per-vertex incident-edge CSR layout (``indptr``/``indices``) is
derived lazily from the edge arrays and rebuilt only after mutations,
so the amortized cost of graph maintenance stays O(1) per append.

The scene is built once per :class:`~repro.visibility.graph.
VisibilityGraph` (lazily, at the first vectorized sweep) and then
extended incrementally by the graph's ``add_obstacle`` /
``add_entity`` / ``delete_entity`` hooks.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.point import Point
from repro.model import Obstacle

#: Initial capacity of every growable buffer.
_INITIAL_CAPACITY = 16


def _grown(arr: np.ndarray, need: int) -> np.ndarray:
    """``arr`` with capacity at least ``need`` (amortized doubling)."""
    capacity = arr.shape[0]
    if need <= capacity:
        return arr
    while capacity < need:
        capacity *= 2
    out = np.empty((capacity,) + arr.shape[1:], dtype=arr.dtype)
    out[: arr.shape[0]] = arr
    return out


class PackedScene:
    """Contiguous array mirror of one visibility graph's scene."""

    __slots__ = (
        "_vxy",
        "_n_verts",
        "_vert_points",
        "_vert_index",
        "_eab",
        "_eoid",
        "_n_edges",
        "_fxy",
        "_n_free",
        "_free_points",
        "_free_index",
        "_csr_indptr",
        "_csr_indices",
        "_csr_dirty",
        "_event_cache",
    )

    def __init__(self) -> None:
        self._vxy = np.empty((_INITIAL_CAPACITY, 2), dtype=np.float64)
        self._n_verts = 0
        self._vert_points: list[Point] = []
        self._vert_index: dict[Point, int] = {}
        self._eab = np.empty((_INITIAL_CAPACITY, 2), dtype=np.int64)
        self._eoid = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._n_edges = 0
        self._fxy = np.empty((_INITIAL_CAPACITY, 2), dtype=np.float64)
        self._n_free = 0
        self._free_points: list[Point] = []
        self._free_index: dict[Point, int] = {}
        self._csr_indptr = np.zeros(1, dtype=np.int64)
        self._csr_indices = np.empty(0, dtype=np.int64)
        self._csr_dirty = False
        self._event_cache: tuple[np.ndarray, list[Point]] | None = None

    # ------------------------------------------------------------- mutation
    def add_obstacle(self, obs: Obstacle) -> None:
        """Pack one obstacle's vertices and boundary edges."""
        for v in obs.polygon.vertices:
            self._intern_vertex(v)
        edges = list(obs.polygon.edges())
        need = self._n_edges + len(edges)
        self._eab = _grown(self._eab, need)
        self._eoid = _grown(self._eoid, need)
        for a, b in edges:
            i = self._n_edges
            self._eab[i, 0] = self._vert_index[a]
            self._eab[i, 1] = self._vert_index[b]
            self._eoid[i] = obs.oid
            self._n_edges = i + 1
        self._csr_dirty = True

    def remove_obstacle(self, oid: int) -> None:
        """Unpack one obstacle: drop its boundary edges and every vertex
        no remaining edge references.

        Edge rows are compacted with one vectorized boolean-mask pass;
        surviving vertices are renumbered densely and the edge endpoint
        indices remapped, so the arrays stay contiguous and the CSR
        rebuild cost stays proportional to the surviving scene.
        """
        m = self._n_edges
        keep = self._eoid[:m] != oid
        n_keep = int(keep.sum())
        if n_keep == m:
            return
        kept_ab = self._eab[:m][keep]
        kept_oid = self._eoid[:m][keep]
        n = self._n_verts
        used = np.zeros(n, dtype=bool)
        if n_keep:
            used[kept_ab.reshape(-1)] = True
        if not used.all():
            remap = np.cumsum(used, dtype=np.int64) - 1
            new_points = [
                p for p, u in zip(self._vert_points, used.tolist()) if u
            ]
            self._vxy[: len(new_points)] = self._vxy[:n][used]
            self._vert_points = new_points
            self._vert_index = {p: i for i, p in enumerate(new_points)}
            self._n_verts = len(new_points)
            if n_keep:
                kept_ab = remap[kept_ab]
        self._eab[:n_keep] = kept_ab
        self._eoid[:n_keep] = kept_oid
        self._n_edges = n_keep
        self._csr_dirty = True
        self._event_cache = None

    def add_free_point(self, p: Point) -> None:
        """Pack one free point (entity or query point).

        A point coinciding with a packed obstacle vertex is already an
        event and is not packed twice (mirroring the graph's node
        identity: one ``Point`` value, one node).
        """
        if p in self._free_index or p in self._vert_index:
            return
        self._fxy = _grown(self._fxy, self._n_free + 1)
        slot = self._n_free
        self._fxy[slot, 0] = p.x
        self._fxy[slot, 1] = p.y
        self._free_points.append(p)
        self._free_index[p] = slot
        self._n_free = slot + 1
        self._event_cache = None

    def remove_free_point(self, p: Point) -> None:
        """Unpack one free point (O(1) swap with the last slot)."""
        slot = self._free_index.pop(p, None)
        if slot is None:
            return
        last = self._n_free - 1
        if slot != last:
            self._fxy[slot] = self._fxy[last]
            moved = self._free_points[last]
            self._free_points[slot] = moved
            self._free_index[moved] = slot
        self._free_points.pop()
        self._n_free = last
        self._event_cache = None

    def _intern_vertex(self, v: Point) -> int:
        idx = self._vert_index.get(v)
        if idx is not None:
            return idx
        # Mirror the graph's node promotion: a free point at the new
        # vertex's coordinates becomes the vertex (one event, not two).
        self.remove_free_point(v)
        self._vxy = _grown(self._vxy, self._n_verts + 1)
        idx = self._n_verts
        self._vxy[idx, 0] = v.x
        self._vxy[idx, 1] = v.y
        self._vert_points.append(v)
        self._vert_index[v] = idx
        self._n_verts = idx + 1
        self._csr_dirty = True
        self._event_cache = None
        return idx

    # -------------------------------------------------------------- queries
    @property
    def vertex_count(self) -> int:
        """Number of packed obstacle vertices."""
        return self._n_verts

    @property
    def edge_count(self) -> int:
        """Number of packed boundary edges."""
        return self._n_edges

    @property
    def free_count(self) -> int:
        """Number of packed free points."""
        return self._n_free

    def vertex_xy(self) -> np.ndarray:
        """``(n_vertices, 2)`` float64 view of obstacle vertex coords."""
        return self._vxy[: self._n_verts]

    def free_xy(self) -> np.ndarray:
        """``(n_free, 2)`` float64 view of free-point coords."""
        return self._fxy[: self._n_free]

    def edge_endpoints(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-edge endpoint indices into :meth:`vertex_xy` (a, b)."""
        return self._eab[: self._n_edges, 0], self._eab[: self._n_edges, 1]

    def edge_oids(self) -> np.ndarray:
        """Per-edge owning obstacle id."""
        return self._eoid[: self._n_edges]

    def vertex_id(self, p: Point) -> int | None:
        """Packed index of obstacle vertex ``p`` (``None`` if not one)."""
        return self._vert_index.get(p)

    def event_arrays(self) -> tuple[np.ndarray, list[Point]]:
        """Every event, in packed order (vertices then free points), as
        ``(coords, points)``: an ``(n, 2)`` float64 array and the
        parallel ``Point`` list.  Cached between mutations — one sweep
        per graph node means this is requested O(n) times per build —
        and must be treated as read-only by callers.
        """
        if self._event_cache is None:
            xy = (
                np.vstack([self.vertex_xy(), self.free_xy()])
                if self._n_free
                else self.vertex_xy()
            )
            self._event_cache = (xy, self._vert_points + self._free_points)
        return self._event_cache

    def event_points(self) -> list[Point]:
        """Every event point, in packed order: vertices then free points.

        Index ``i`` corresponds to row ``i`` of
        ``event_arrays()[0]``.
        """
        return self.event_arrays()[1]

    # ------------------------------------------------------------------ CSR
    def incident_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-vertex incident-edge CSR: ``(indptr, edge_indices)``.

        Edge ids incident to vertex ``v`` are
        ``edge_indices[indptr[v]:indptr[v + 1]]``.  Rebuilt lazily
        after mutations (one vectorized pass over the edge arrays).
        """
        if self._csr_dirty:
            self._rebuild_csr()
        return self._csr_indptr, self._csr_indices

    def incident_edge_ids(self, vertex: int) -> np.ndarray:
        """Edge ids having packed vertex ``vertex`` as an endpoint."""
        indptr, indices = self.incident_csr()
        return indices[indptr[vertex] : indptr[vertex + 1]]

    def _rebuild_csr(self) -> None:
        n, m = self._n_verts, self._n_edges
        ends = self._eab[:m].T.reshape(-1)  # all a-endpoints, then all b
        eids = np.tile(np.arange(m, dtype=np.int64), 2)
        order = np.argsort(ends, kind="stable")
        self._csr_indices = eids[order]
        counts = np.bincount(ends, minlength=n) if m else np.zeros(n, np.int64)
        self._csr_indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )
        self._csr_dirty = False
