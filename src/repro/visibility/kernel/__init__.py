"""Vectorized visibility kernel.

The rotational plane sweep costs one ``O(n log n)`` pass per
visibility-graph node, and its per-event work is dominated by python
object arithmetic (``Point`` allocation, ``ccw`` calls, open-edge
bookkeeping).  This package replaces that inner loop with batched
numpy array kernels:

* :class:`~repro.visibility.kernel.packed.PackedScene` — obstacle
  vertices, boundary edges and free points flattened into contiguous
  arrays (vertex coordinates, edge endpoint indices, a per-vertex
  incident-edge CSR layout), built once per graph and extended
  incrementally as obstacles and entities arrive;
* :mod:`~repro.visibility.kernel.numpy_sweep` — the vectorized sweep:
  one ``arctan2`` pass for every event angle, a numpy angular sort,
  and batched orientation/intersection classification of candidate
  blocking edges, with the exact per-pair oracle deciding only the
  degenerate residue so results match the python sweep everywhere;
* :mod:`~repro.visibility.kernel.backend` — the pluggable
  :class:`~repro.visibility.kernel.backend.VisibilityBackend` protocol
  and the named implementations (``python-sweep``, ``numpy-kernel``,
  ``naive``) with env/auto selection.
"""

from repro.visibility.kernel.backend import (
    AUTO_BACKEND_ENV,
    NaiveBackend,
    NumpyKernelBackend,
    PythonSweepBackend,
    VisibilityBackend,
    available_backends,
    default_backend_name,
    numpy_available,
    resolve_backend,
)


def __getattr__(name: str):
    # PackedScene imports numpy; loaded lazily so this package (and the
    # backend registry) stays importable when numpy is absent.
    if name == "PackedScene":
        from repro.visibility.kernel.packed import PackedScene

        return PackedScene
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AUTO_BACKEND_ENV",
    "NaiveBackend",
    "NumpyKernelBackend",
    "PackedScene",
    "PythonSweepBackend",
    "VisibilityBackend",
    "available_backends",
    "default_backend_name",
    "numpy_available",
    "resolve_backend",
]
