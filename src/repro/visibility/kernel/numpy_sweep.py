"""The vectorized rotational sweep.

One call answers "which scene points are visible from ``p``" with
batched numpy array passes instead of per-event python geometry:

1. **one ``arctan2`` pass** computes the polar angle and squared
   distance of every event (obstacle vertices + free points) around
   ``p``, and the events are ordered by the canonical sweep key
   (:func:`repro.visibility.ordering.order_events_array`);
2. **angular culling** finds, per boundary edge, the contiguous run of
   sorted events falling inside the edge's (padded) angular fan as
   seen from ``p`` — only those (event, edge) pairs can interact, so
   the classification work drops from ``O(n·m)`` to the number of
   actual ray/edge crossings (one ``searchsorted`` over all edges);
3. **batched classification** evaluates the four orientation signs of
   each candidate pair with the same scale-invariant tolerance as
   :func:`repro.geometry.segment.ccw` (inflated 4x for conservatism)
   and buckets the pair as *blocked* (proper transversal crossing
   strictly inside both open segments — provably invisible), *clear*
   (strictly separated — provably non-blocking), or *ambiguous*;
4. only events with an ambiguous pair (grazes, collinear runs,
   boundary contacts) fall back to the exact per-pair oracle
   (:func:`repro.visibility.naive.is_visible`) — the same oracle the
   python sweep delegates its degenerate contacts to — so both
   backends return identical visible sets everywhere.

Events whose every candidate is clear still undergo the python
sweep's residual check: a segment leaving ``p`` straight through the
interior of an obstacle whose boundary contains ``p`` generates no
crossing candidates at all.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.geometry.constants import EPS
from repro.geometry.point import Point
from repro.visibility.naive import is_visible
from repro.visibility.ordering import order_events_array

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.visibility.graph import VisibilityGraph
    from repro.visibility.kernel.packed import PackedScene

TWO_PI = 2.0 * math.pi

#: Angular padding of each edge's candidate fan.  The ``ccw`` collinear
#: band is ``|sin| <= EPS`` (EPS = 1e-9 radians-equivalent); any contact
#: the tolerant predicates could see lies within that band of the exact
#: fan, so a pad three orders of magnitude wider is comfortably safe
#: while still admitting virtually no spurious candidates.
_FAN_PAD = 1e-6

#: Squared-tolerance inflation for the batched orientation signs: the
#: kernel's "strictly non-collinear" band is 4x wider than ``ccw``'s,
#: so every decision the tolerant python predicates could flip lands in
#: the ambiguous residue and is settled by the exact oracle instead.
_TOL_INFLATION = 16.0


def kernel_visible_from(
    p: Point, graph: "VisibilityGraph", packed: "PackedScene"
) -> list[Point]:
    """All scene points visible from ``p`` — vectorized sweep."""
    exy, points = packed.event_arrays()
    if exy.shape[0] == 0:
        return []
    # Same contract as the python sweep: a center strictly inside an
    # obstacle sees nothing (every segment leaves through the
    # interior), keeping all backends oracle-identical even for
    # out-of-contract inputs.  Boundary points cannot be strictly
    # interior (disjoint interiors), so vertex centers skip the scan.
    p_boundary = graph.boundary_obstacles(p)
    if not p_boundary and any(
        obs.polygon.contains(p) for obs in graph.scene_obstacles()
    ):
        return []

    px, py = p.x, p.y
    dx = exy[:, 0] - px
    dy = exy[:, 1] - py
    dist_sq = dx * dx + dy * dy
    angles = np.arctan2(dy, dx)
    np.add(angles, TWO_PI, out=angles, where=angles < 0.0)

    # Exclude p itself (exact coordinate identity, like the python sweep).
    self_mask = (dx == 0.0) & (dy == 0.0)
    ev_ids = np.nonzero(~self_mask)[0]
    if ev_ids.size == 0:
        return []
    ev_ang = angles[ev_ids]
    ev_dsq = dist_sq[ev_ids]
    order = order_events_array(ev_ang, ev_dsq)
    ev_ids = ev_ids[order]
    ev_ang = ev_ang[order]
    ev_dsq = ev_dsq[order]
    n_ev = ev_ids.shape[0]

    ea, eb = packed.edge_endpoints()
    if ea.shape[0]:
        blocked, ambiguous = _classify_events(
            p, packed, exy, angles, dist_sq, ev_ids, ev_ang, ev_dsq, ea, eb
        )
    else:
        blocked = ambiguous = np.zeros(n_ev, dtype=bool)

    obstacles = None
    visible: list[Point] = []
    survivors = np.nonzero(~blocked)[0]
    amb_mask = ambiguous[survivors]
    # Residual check, vectorized: a segment leaving p straight through
    # the interior of an obstacle whose boundary contains p generates
    # no crossing candidates at all.  For a survivor with *no*
    # ambiguous pair every non-incident edge is strictly separated
    # from the open segment p-w, so the segment meets each boundary
    # only at its endpoints: one midpoint containment test per
    # boundary obstacle decides `crosses_interior` exactly, except for
    # midpoints within a conservative band of the boundary (collinear
    # grazes along an edge through p), which keep the exact test.
    drop = np.zeros(survivors.shape[0], dtype=bool)
    if p_boundary:
        plain = np.nonzero(~amb_mask)[0]
        if plain.size:
            plain_ids = ev_ids[survivors[plain]]
            inside, borderline = _interior_departures(
                p, p_boundary, exy[plain_ids]
            )
            for j in np.nonzero(borderline)[0].tolist():
                w = points[plain_ids[j]]
                inside[j] = any(
                    obs.polygon.crosses_interior(p, w) for obs in p_boundary
                )
            drop[plain] = inside
    for amb, dropped, idx in zip(
        amb_mask.tolist(), drop.tolist(), ev_ids[survivors].tolist()
    ):
        w = points[idx]
        if amb:
            if obstacles is None:
                obstacles = graph.scene_obstacles()
            if is_visible(p, w, obstacles):
                visible.append(w)
            continue
        if dropped:
            continue
        visible.append(w)
    return visible


#: Half-width of the boundary band (relative, scaled by edge length)
#: inside which the vectorized midpoint containment defers to the
#: exact ``crosses_interior``.  Three orders of magnitude wider than
#: the tolerant scalar predicates' band (``EPS * (len + 1)``), so every
#: decision the python geometry could see differently is deferred.
_BOUNDARY_BAND = 1e-6


def _interior_departures(
    p: Point, p_boundary, wxy: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-target flags ``(inside, borderline)`` for the residual check.

    For each target ``w`` (a row of ``wxy``) the midpoint of ``p-w`` is
    tested for strict containment in each obstacle of ``p_boundary``
    with the same even-odd ray cast as
    :meth:`repro.geometry.polygon.Polygon._crossing_number_odd`.  The
    caller guarantees the open segment meets every obstacle boundary
    at most at its endpoints (all crossing candidates were strictly
    clear), so the midpoint verdict *is* ``crosses_interior`` — except
    when the midpoint falls within ``_BOUNDARY_BAND`` of a boundary
    edge, where ``borderline`` sends the decision back to the exact
    scalar test.
    """
    n = wxy.shape[0]
    mx = (wxy[:, 0] + p.x) * 0.5
    my = (wxy[:, 1] + p.y) * 0.5
    inside = np.zeros(n, dtype=bool)
    borderline = np.zeros(n, dtype=bool)
    for obs in p_boundary:
        verts = obs.polygon.vertices
        ax = np.array([v.x for v in verts])
        ay = np.array([v.y for v in verts])
        bx = np.roll(ax, -1)
        by = np.roll(ay, -1)
        ex = bx - ax
        ey = by - ay
        e_len_sq = ex * ex + ey * ey
        # Distance from each midpoint to each closed boundary edge
        # (clamped projection), against the per-edge band width.
        t = ((mx[:, None] - ax) * ex + (my[:, None] - ay) * ey) / e_len_sq
        np.clip(t, 0.0, 1.0, out=t)
        dx = mx[:, None] - (ax + t * ex)
        dy = my[:, None] - (ay + t * ey)
        band = _BOUNDARY_BAND * (np.sqrt(e_len_sq) + 1.0)
        near = ((dx * dx + dy * dy) <= band * band).any(axis=1)
        # Even-odd ray cast to +x, the scalar test's exact arithmetic:
        # half-open rule on the edge y-range, crossing strictly right.
        straddles = (ay > my[:, None]) != (by > my[:, None])
        denom = np.where(straddles, by - ay, 1.0)
        x_cross = ax + (my[:, None] - ay) * ex / denom
        crossings = (straddles & (x_cross > mx[:, None])).sum(axis=1)
        odd = (crossings & 1).astype(bool)
        inside |= odd & ~near
        borderline |= near
    return inside, borderline & ~inside


def _classify_events(
    p: Point,
    packed: "PackedScene",
    exy: np.ndarray,
    angles: np.ndarray,
    dist_sq: np.ndarray,
    ev_ids: np.ndarray,
    ev_ang: np.ndarray,
    ev_dsq: np.ndarray,
    ea: np.ndarray,
    eb: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-sorted-event (blocked, ambiguous) flags from candidate pairs."""
    n_ev = ev_ids.shape[0]
    m = ea.shape[0]
    px, py = p.x, p.y

    # Edges incident to p never block (their contact is at p itself; the
    # caller's residual check covers interior departures) — excluded via
    # the packed CSR layout, exactly as the python sweep skips them.
    live = np.ones(m, dtype=bool)
    p_vid = packed.vertex_id(p)
    if p_vid is not None:
        live[packed.incident_edge_ids(p_vid)] = False

    # Angular fan of each edge as seen from p.  The fan of a segment not
    # containing p spans < pi; near-pi widths mean p is (nearly) on the
    # segment — those edges are degenerate and paired with every event.
    a_ang = angles[ea]
    b_ang = angles[eb]
    delta = np.mod(b_ang - a_ang, TWO_PI)
    short = delta <= math.pi
    lo = np.where(short, a_ang, b_ang)
    width = np.where(short, delta, TWO_PI - delta)
    degenerate = live & (width >= math.pi - 2.0 * _FAN_PAD)
    fanned = live & ~degenerate

    # Candidate (event, edge) pairs: events whose sorted angle falls in
    # the padded fan.  Searching in a doubled angle domain turns every
    # (possibly wrapping) circular interval into one linear range.
    f_ids = np.nonzero(fanned)[0]
    lo_f = np.mod(lo[f_ids] - _FAN_PAD, TWO_PI)
    hi_f = lo_f + width[f_ids] + 2.0 * _FAN_PAD
    ev_ang2 = np.concatenate([ev_ang, ev_ang + TWO_PI])
    starts = np.searchsorted(ev_ang2, lo_f, side="left")
    stops = np.searchsorted(ev_ang2, hi_f, side="right")
    counts = stops - starts
    pair_edge = np.repeat(f_ids, counts)
    total = int(counts.sum())
    # Flat within-range offsets: arange(total) minus each range's start
    # in the concatenated layout.
    cum = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        cum - counts, counts
    )
    pair_pos = (np.repeat(starts, counts) + offsets) % n_ev

    d_ids = np.nonzero(degenerate)[0]
    if d_ids.size:
        pair_edge = np.concatenate(
            [pair_edge, np.repeat(d_ids, n_ev)]
        )
        pair_pos = np.concatenate(
            [pair_pos, np.tile(np.arange(n_ev, dtype=np.int64), d_ids.size)]
        )

    if pair_pos.size == 0:
        z = np.zeros(n_ev, dtype=bool)
        return z, z

    # ---- batched orientation/intersection classification ----------------
    e_id = ev_ids[pair_pos]
    wx = exy[e_id, 0]
    wy = exy[e_id, 1]
    r2 = ev_dsq[pair_pos]
    ia = ea[pair_edge]
    ib = eb[pair_edge]
    ax = exy[ia, 0]
    ay = exy[ia, 1]
    bx = exy[ib, 0]
    by = exy[ib, 1]
    a2 = dist_sq[ia]
    b2 = dist_sq[ib]

    rx = wx - px
    ry = wy - py
    sx = bx - ax
    sy = by - ay
    qax = ax - px
    qay = ay - py
    qbx = bx - px
    qby = by - py
    s_len2 = sx * sx + sy * sy
    wa_x = wx - ax
    wa_y = wy - ay
    wa2 = wa_x * wa_x + wa_y * wa_y

    tol = _TOL_INFLATION * (EPS * EPS)
    c1 = sx * (py - ay) - sy * (px - ax)  # ccw(a, b, p)
    c2 = sx * wa_y - sy * wa_x  # ccw(a, b, w)
    c3 = rx * qay - ry * qax  # ccw(p, w, a)
    c4 = rx * qby - ry * qbx  # ccw(p, w, b)
    z1 = c1 * c1 <= tol * s_len2 * a2
    z2 = c2 * c2 <= tol * s_len2 * wa2
    z3 = c3 * c3 <= tol * r2 * a2
    z4 = c4 * c4 <= tol * r2 * b2

    pos1 = c1 > 0.0
    pos2 = c2 > 0.0
    pos3 = c3 > 0.0
    pos4 = c4 > 0.0
    strict12 = ~z1 & ~z2
    strict34 = ~z3 & ~z4
    blocked_pair = strict12 & strict34 & (pos1 != pos2) & (pos3 != pos4)
    clear_pair = (strict12 & (pos1 == pos2)) | (strict34 & (pos3 == pos4))

    # Edges incident to the event vertex touch the ray exactly at w:
    # clear, unless the edge runs back along the ray toward p (collinear
    # other endpoint strictly closer) — then it overlaps the segment and
    # the exact oracle must decide.
    w_is_a = ia == e_id
    w_is_b = ib == e_id
    overlap_a = w_is_b & z3 & (a2 < r2 * (1.0 + EPS))
    overlap_b = w_is_a & z4 & (b2 < r2 * (1.0 + EPS))
    w_incident = w_is_a | w_is_b
    clear_pair |= w_incident & ~(overlap_a | overlap_b)
    blocked_pair &= ~w_incident

    ambiguous_pair = ~blocked_pair & ~clear_pair
    blocked = (
        np.bincount(pair_pos[blocked_pair], minlength=n_ev) > 0
    )
    ambiguous = (
        np.bincount(pair_pos[ambiguous_pair], minlength=n_ev) > 0
    ) & ~blocked
    return blocked, ambiguous
