"""Tangent visibility graphs for convex obstacles [PV95].

The paper notes (Sec. 2.3) that when all obstacles are convex it
suffices to consider the *tangent* visibility graph, which keeps only
edges tangent to the obstacles at both endpoints: a shortest path never
bends around a vertex from the non-tangent side, so pruning the other
edges preserves all shortest-path distances while shrinking the graph
substantially.

An edge is tangent at an obstacle vertex when both of the vertex's
polygon neighbours lie on the same side of (or on) the edge's
supporting line.  Free points (query points, entities) impose no
constraint.
"""

from __future__ import annotations

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.segment import COLLINEAR, ccw
from repro.model import Obstacle
from repro.visibility.graph import VisibilityGraph


def is_tangent_at(vertex: Point, other: Point, obstacle: Obstacle) -> bool:
    """True when segment ``vertex -> other`` is tangent to ``obstacle``
    at ``vertex`` (both boundary neighbours on one side of the line)."""
    vertices = obstacle.polygon.vertices
    try:
        i = vertices.index(vertex)
    except ValueError:
        raise GeometryError(f"{vertex!r} is not a vertex of {obstacle!r}") from None
    n = len(vertices)
    prev_v = vertices[(i - 1) % n]
    next_v = vertices[(i + 1) % n]
    s_prev = ccw(vertex, other, prev_v)
    s_next = ccw(vertex, other, next_v)
    if s_prev == COLLINEAR or s_next == COLLINEAR:
        return True
    return s_prev == s_next


def prune_to_tangent(graph: VisibilityGraph) -> int:
    """Remove all non-tangent edges from ``graph`` in place.

    Requires every obstacle in the graph to be convex (raises
    :class:`GeometryError` otherwise — the tangent property does not
    hold around reflex vertices).  Returns the number of undirected
    edges removed.  Shortest-path distances between the remaining nodes
    are preserved, which the test suite verifies against the unpruned
    graph.
    """
    for obs in graph.scene_obstacles():
        if not obs.polygon.is_convex():
            raise GeometryError(
                f"tangent pruning requires convex obstacles; {obs!r} is not"
            )
    removed = 0
    for u in list(graph.nodes()):
        for v in list(graph.neighbors(u)):
            if not (u < v):
                continue
            if _edge_is_tangent(graph, u, v):
                continue
            del graph._adj[u][v]
            del graph._adj[v][u]
            removed += 1
    return removed


def _edge_is_tangent(graph: VisibilityGraph, u: Point, v: Point) -> bool:
    for point, other in ((u, v), (v, u)):
        for obs in graph.boundary_obstacles(point):
            if point in obs.polygon.vertices:
                if not is_tangent_at(point, other, obs):
                    return False
    return True
