"""The dynamic local visibility graph (paper Sec. 4).

Nodes are obstacle vertices plus *free points* (query points and
entities); an edge connects two mutually visible nodes, weighted by
Euclidean distance.  The paper's three maintenance operations are
implemented exactly as described:

* ``add_obstacle`` — used by the iterative obstructed-distance
  computation (Fig. 8) to grow the graph: removes existing edges that
  cross the new polygon's interior, then sweeps each new vertex;
* ``add_entity`` — one rotational sweep for the new point;
* ``delete_entity`` — removes the point and its incident edges.

``remove_obstacle`` extends the paper's set with the inverse of
``add_obstacle``: the obstacle's vertices and boundary edges are torn
out and the visibility lost to the obstacle is rediscovered by a
*local re-sweep* — only node pairs whose connecting segment meets the
removed polygon's bounding box can have been blocked by it, so only
those pairs are re-examined (against the exact oracle both sweep
backends reduce to).  This turns an obstacle delete from a full
rebuild into an in-place repair proportional to the obstacle's
visibility shadow.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence, TYPE_CHECKING

from repro.errors import QueryError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.model import Obstacle
from repro.visibility.edges import BoundaryEdge
from repro.visibility.kernel.backend import VisibilityBackend, resolve_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.visibility.kernel.packed import PackedScene


class VisibilityGraph:
    """A local visibility graph with dynamic maintenance operations.

    ``method`` selects the visibility backend by name or instance (see
    :mod:`repro.visibility.kernel.backend`): ``"python-sweep"`` (alias
    ``"sweep"``) is the paper's rotational plane sweep [SS84],
    ``"numpy-kernel"`` the vectorized equivalent; both assume obstacle
    boundaries do not cross each other (disjoint interiors — the
    paper's standing assumption).  ``"naive"`` is the exact pairwise
    oracle, slower but valid even for overlapping obstacles.  ``None``
    auto-picks (env ``REPRO_VISIBILITY_BACKEND``, else the numpy
    kernel when numpy is importable).
    """

    __slots__ = (
        "_adj",
        "_obstacles",
        "_incident",
        "_free",
        "_promoted",
        "_boundary",
        "_edges",
        "_obstacle_revision",
        "_structure_revision",
        "_csr",
        "_backend",
        "_packed",
        "method",
    )

    def __init__(self, method: "str | VisibilityBackend | None" = None) -> None:
        self._backend = resolve_backend(method)
        self.method = self._backend.name
        self._obstacle_revision = 0
        self._structure_revision = 0
        #: Frozen CSR view of the adjacency (``(structure_revision,
        #: CSRGraph)`` or ``None``), maintained by
        #: :mod:`repro.visibility.csr`.
        self._csr: "tuple[int, object] | None" = None
        self._adj: dict[Point, dict[Point, float]] = {}
        self._obstacles: dict[int, Obstacle] = {}
        self._incident: dict[Point, list[BoundaryEdge]] = {}
        self._free: set[Point] = set()
        # Free points promoted to obstacle vertices (coinciding
        # coordinates): remembered so removing the owning obstacle
        # demotes them back to free points instead of deleting them.
        self._promoted: set[Point] = set()
        self._boundary: dict[Point, tuple[Obstacle, ...]] = {}
        self._edges: list[BoundaryEdge] = []
        self._packed: "PackedScene | None" = None

    # -------------------------------------------------------------- build
    @classmethod
    def build(
        cls,
        points: Iterable[Point],
        obstacles: Iterable[Obstacle],
        *,
        method: "str | VisibilityBackend | None" = None,
    ) -> "VisibilityGraph":
        """Construct a graph over ``points`` and ``obstacles`` in one pass.

        With a sweep backend this is the paper's
        ``build_visibility_graph`` ([SS84], one rotational sweep per
        node, no tangent simplification).
        """
        graph = cls(method=method)
        for obs in obstacles:
            graph._register_obstacle(obs)
        for p in points:
            graph._register_free_point(p)
        for node in list(graph._adj):
            for w in graph._visible_from(node):
                graph._set_edge(node, w)
        return graph

    def _visible_from(self, node: Point) -> list[Point]:
        return self._backend.visible_from(node, self)

    # --------------------------------------------------------- serialization
    def snapshot_parts(
        self,
    ) -> tuple[list[Obstacle], list[Point], list[tuple[Point, Point]]]:
        """The graph flattened for serialization.

        Returns ``(obstacles, free_points, edges)`` such that
        :meth:`restore` reproduces this graph exactly without running a
        single visibility sweep.  Promoted free points (entities
        coinciding with obstacle vertices) are folded into the free
        list — re-registering them against the restored obstacles
        re-promotes them.
        """
        free = list(self._free) + sorted(self._promoted)
        edges = [
            (u, v) for u in self._adj for v in self._adj[u] if u < v
        ]
        return list(self._obstacles.values()), free, edges

    @classmethod
    def restore(
        cls,
        obstacles: Iterable[Obstacle],
        free_points: Iterable[Point],
        edges: Iterable[tuple[Point, Point]],
        *,
        method: "str | VisibilityBackend | None" = None,
    ) -> "VisibilityGraph":
        """Reassemble a graph from :meth:`snapshot_parts` output.

        Obstacles and free points go through the normal registration
        path (so incident-edge, boundary-membership and promotion
        bookkeeping are rebuilt as at live construction), but the
        visibility edges are installed verbatim instead of re-swept —
        restoring a cached graph costs array writes, not sweeps.  Edge
        endpoints must be nodes (obstacle vertices or free points);
        unknown endpoints raise :class:`~repro.errors.QueryError`.
        """
        graph = cls(method=method)
        for obs in obstacles:
            graph._register_obstacle(obs)
        for p in free_points:
            graph._register_free_point(p)
        for u, v in edges:
            if u not in graph._adj or v not in graph._adj:
                raise QueryError(
                    f"restored edge ({u!r}, {v!r}) references a point "
                    f"that is not a node"
                )
            graph._set_edge(u, v)
        return graph

    def packed_scene(self) -> "PackedScene":
        """The scene flattened into numpy arrays (built lazily, then
        kept in sync by the dynamic-update hooks)."""
        if self._packed is None:
            from repro.visibility.kernel.packed import PackedScene

            packed = PackedScene()
            for obs in self._obstacles.values():
                packed.add_obstacle(obs)
            for p in self._free:
                packed.add_free_point(p)
            self._packed = packed
        return self._packed

    # ------------------------------------------------------- SweepScene API
    def sweep_points(self) -> Iterator[Point]:
        """Every node (obstacle vertices and free points)."""
        return iter(self._adj)

    def incident_edges(self, v: Point) -> Sequence[BoundaryEdge]:
        """Boundary edges having ``v`` as an endpoint."""
        return self._incident.get(v, ())

    def boundary_edges(self) -> Iterable[BoundaryEdge]:
        """All obstacle boundary edges."""
        return self._edges

    def boundary_obstacles(self, p: Point) -> Sequence[Obstacle]:
        """Obstacles whose boundary contains ``p``.

        Known nodes answer from the registration-time cache; unknown
        probe points (e.g. ONN candidates evaluated against a shared
        distance field without being added to the graph) are checked on
        the fly, so the sweep's interior-departure test stays correct
        for entities lying exactly on obstacle boundaries.
        """
        cached = self._boundary.get(p)
        if cached is not None:
            return cached
        if p in self._adj:
            return ()
        return tuple(
            obs
            for obs in self._obstacles.values()
            if obs.mbr.expanded(1e-9).contains_point(p)
            and obs.polygon.on_boundary(p)
        )

    def scene_obstacles(self) -> Sequence[Obstacle]:
        """All obstacles currently in the graph."""
        return list(self._obstacles.values())

    # ------------------------------------------------------------ inspection
    @property
    def node_count(self) -> int:
        """Number of graph nodes."""
        return len(self._adj)

    @property
    def edge_count(self) -> int:
        """Number of undirected visibility edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def nodes(self) -> Iterator[Point]:
        """Iterate over all nodes."""
        return iter(self._adj)

    def has_node(self, p: Point) -> bool:
        """True when ``p`` is a node."""
        return p in self._adj

    def neighbors(self, p: Point) -> Mapping[Point, float]:
        """Adjacent nodes with edge weights (Euclidean lengths)."""
        try:
            return self._adj[p]
        except KeyError:
            raise QueryError(f"{p!r} is not a node of this visibility graph") from None

    @property
    def obstacle_revision(self) -> int:
        """Monotone counter bumped whenever an obstacle is incorporated.

        Free-point additions/removals do not bump it: shortest paths
        turn only at obstacle vertices, so distances between existing
        nodes can change only when the obstacle set does.  Structures
        derived from the graph (e.g. a cached Dijkstra field) compare
        revisions instead of being invalidated by hand.
        """
        return self._obstacle_revision

    @property
    def structure_revision(self) -> int:
        """Monotone counter bumped on *any* topology change.

        Unlike :attr:`obstacle_revision` this also moves on free-point
        additions/removals: node-indexed structures (the frozen CSR
        arrays of :mod:`repro.visibility.csr`) are invalidated by any
        change to the node or edge set, not just by obstacle
        incorporation.
        """
        return self._structure_revision

    def has_obstacle(self, oid: int) -> bool:
        """True when the obstacle with id ``oid`` is in the graph."""
        return oid in self._obstacles

    def obstacle_ids(self) -> set[int]:
        """Ids of all obstacles in the graph."""
        return set(self._obstacles)

    def free_points(self) -> set[Point]:
        """The current free points (entities / query points)."""
        return set(self._free)

    # ------------------------------------------------------- dynamic updates
    def rebuild(self, obstacles: Iterable[Obstacle]) -> None:
        """Replace the obstacle set in place, keeping all free points.

        Deletions cannot be applied incrementally (edges the obstacle
        blocked would have to be rediscovered), so the graph is rebuilt
        from scratch — but *in place*, preserving object identity:
        holders of this graph (cached entries, distance fields) see the
        new obstacle set through the ``obstacle_revision`` bump instead
        of dangling on a stale copy.
        """
        free = list(self._free) + sorted(self._promoted)
        self._adj.clear()
        self._obstacles.clear()
        self._incident.clear()
        self._free.clear()
        self._promoted.clear()
        self._boundary.clear()
        self._edges.clear()
        self._packed = None
        self._obstacle_revision += 1
        self._structure_revision += 1
        self._csr = None
        for obs in obstacles:
            self._register_obstacle(obs)
        for p in free:
            self._register_free_point(p)
        for node in list(self._adj):
            for w in self._visible_from(node):
                self._set_edge(node, w)

    def add_obstacle(self, obs: Obstacle) -> bool:
        """Incorporate a new obstacle (paper's ``add_obstacle``).

        Removes existing edges crossing the polygon's interior, then
        runs one rotational sweep per new vertex.  Returns ``False``
        when the obstacle was already present.
        """
        if obs.oid in self._obstacles:
            return False
        poly = obs.polygon
        self._remove_edges_crossing(poly)
        new_vertices = self._register_obstacle(obs)
        # Entities lying on the new polygon's boundary gain a membership.
        for p in self._free:
            if poly.on_boundary(p):
                self._boundary[p] = self._boundary.get(p, ()) + (obs,)
        for v in new_vertices:
            for w in self._visible_from(v):
                self._set_edge(v, w)
        return True

    def remove_obstacle(self, oid: int) -> bool:
        """Remove one obstacle and repair the graph in place.

        The inverse of :meth:`add_obstacle`: the obstacle's boundary
        edges leave the scene, its vertices leave the node set (unless
        another obstacle shares them), and every node pair the obstacle
        could have been blocking is re-examined — a pair can gain
        visibility only if its segment crossed the removed interior, so
        the re-sweep is confined to segments meeting the obstacle's
        MBR.  Returns ``False`` when the obstacle is not in the graph.
        """
        obs = self._obstacles.pop(oid, None)
        if obs is None:
            return False
        self._obstacle_revision += 1
        self._structure_revision += 1
        poly = obs.polygon
        self._edges = [e for e in self._edges if e.oid != oid]
        revived: list[Point] = []
        for v in set(poly.vertices):
            incident = [e for e in self._incident.get(v, ()) if e.oid != oid]
            if incident:
                self._incident[v] = incident
                continue
            self._incident.pop(v, None)
            if v in self._promoted:
                # The vertex doubled as an entity before (or after) the
                # obstacle arrived: demote it back to a free point —
                # its node and edges stay (a cached query centre must
                # survive the delete of an obstacle cornered on it).
                self._promoted.discard(v)
                self._free.add(v)
                revived.append(v)
            elif v in self._adj:
                # Owned by no remaining obstacle: leaves the node set.
                for nbr in list(self._adj[v]):
                    del self._adj[nbr][v]
                del self._adj[v]
        for p, membership in list(self._boundary.items()):
            if obs in membership:
                rest = tuple(o for o in membership if o is not obs)
                if rest:
                    self._boundary[p] = rest
                else:
                    del self._boundary[p]
        if self._packed is not None:
            self._packed.remove_obstacle(oid)
            for v in revived:
                self._packed.add_free_point(v)
        for v in revived:
            membership = tuple(
                o for o in self._obstacles.values() if o.polygon.on_boundary(v)
            )
            if membership:
                self._boundary[v] = membership
        self._resweep_region(poly.mbr)
        return True

    def _resweep_region(self, region: Rect) -> None:
        """Rediscover visibility edges inside ``region``.

        Every currently non-adjacent node pair whose segment's bounding
        box meets ``region`` is re-tested with the exact visibility
        oracle (the reference both sweep backends are parity-locked
        to), so a repaired graph is identical to a from-scratch
        rebuild.
        """
        from repro.visibility.naive import is_visible

        nodes = list(self._adj)
        obstacles = list(self._obstacles.values())
        rminx, rminy = region.minx, region.miny
        rmaxx, rmaxy = region.maxx, region.maxy
        for i, u in enumerate(nodes):
            adj_u = self._adj[u]
            ux, uy = u.x, u.y
            for w in nodes[i + 1:]:
                if w in adj_u:
                    continue
                wx, wy = w.x, w.y
                if (
                    (ux < rminx and wx < rminx)
                    or (ux > rmaxx and wx > rmaxx)
                    or (uy < rminy and wy < rminy)
                    or (uy > rmaxy and wy > rmaxy)
                ):
                    continue
                if is_visible(u, w, obstacles):
                    self._set_edge(u, w)

    def add_entity(self, p: Point) -> bool:
        """Add a free point and connect it to all visible nodes.

        Returns ``False`` when ``p`` already is a node (e.g. the query
        point, a duplicate entity, or an obstacle vertex).
        """
        if p in self._adj:
            return False
        self._register_free_point(p)
        for w in self._visible_from(p):
            self._set_edge(p, w)
        return True

    def delete_entity(self, p: Point) -> bool:
        """Remove a free point and its incident edges.

        Obstacle vertices cannot be deleted; returns ``False`` for them
        and for unknown points.
        """
        if p not in self._free:
            return False
        self._structure_revision += 1
        for nbr in list(self._adj[p]):
            del self._adj[nbr][p]
        del self._adj[p]
        self._free.discard(p)
        self._boundary.pop(p, None)
        if self._packed is not None:
            self._packed.remove_free_point(p)
        return True

    # ------------------------------------------------------------- internals
    def _register_obstacle(self, obs: Obstacle) -> list[Point]:
        self._obstacles[obs.oid] = obs
        self._obstacle_revision += 1
        self._structure_revision += 1
        if self._packed is not None:
            self._packed.add_obstacle(obs)
        new_vertices: list[Point] = []
        for a, b in obs.polygon.edges():
            edge = BoundaryEdge(a, b, obs.oid)
            self._edges.append(edge)
            for v in (a, b):
                self._incident.setdefault(v, []).append(edge)
        for v in obs.polygon.vertices:
            if v not in self._adj:
                self._adj[v] = {}
                new_vertices.append(v)
            # A free point coinciding with the new vertex is promoted to
            # an obstacle vertex: it keeps its node (and edges) but can
            # no longer be removed by delete_entity, which would tear an
            # obstacle corner out of the graph.  remove_obstacle demotes
            # it back when the last owning obstacle goes.
            if v in self._free:
                self._free.discard(v)
                self._promoted.add(v)
            self._boundary[v] = self._boundary.get(v, ()) + (obs,)
        return new_vertices

    def _register_free_point(self, p: Point) -> None:
        if p in self._incident:
            # p coincides with an obstacle vertex: already a node, and
            # it must not enter _free — delete_entity would tear the
            # obstacle corner out of the graph (the reverse order,
            # obstacle arriving second, is handled by the promotion in
            # _register_obstacle).  Remember it so remove_obstacle can
            # demote it back to a free point.
            self._promoted.add(p)
            return
        self._structure_revision += 1
        self._adj.setdefault(p, {})
        self._free.add(p)
        if self._packed is not None:
            self._packed.add_free_point(p)
        membership = tuple(
            obs
            for obs in self._obstacles.values()
            if obs.polygon.on_boundary(p)
        )
        if membership:
            self._boundary[p] = membership

    def _set_edge(self, u: Point, v: Point) -> None:
        if u == v:
            return
        w = u.distance(v)
        self._structure_revision += 1
        self._adj[u][v] = w
        self._adj[v][u] = w

    def _remove_edges_crossing(self, poly: Polygon) -> None:
        self._structure_revision += 1
        mbr = poly.mbr
        for u in list(self._adj):
            for v in list(self._adj[u]):
                if not (u < v):
                    continue
                seg = Rect(
                    min(u.x, v.x), min(u.y, v.y), max(u.x, v.x), max(u.y, v.y)
                )
                if mbr.intersects(seg) and poly.crosses_interior(u, v):
                    del self._adj[u][v]
                    del self._adj[v][u]
