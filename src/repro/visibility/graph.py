"""The dynamic local visibility graph (paper Sec. 4).

Nodes are obstacle vertices plus *free points* (query points and
entities); an edge connects two mutually visible nodes, weighted by
Euclidean distance.  The paper's three maintenance operations are
implemented exactly as described:

* ``add_obstacle`` — used by the iterative obstructed-distance
  computation (Fig. 8) to grow the graph: removes existing edges that
  cross the new polygon's interior, then sweeps each new vertex;
* ``add_entity`` — one rotational sweep for the new point;
* ``delete_entity`` — removes the point and its incident edges.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence, TYPE_CHECKING

from repro.errors import QueryError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.model import Obstacle
from repro.visibility.edges import BoundaryEdge
from repro.visibility.kernel.backend import VisibilityBackend, resolve_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.visibility.kernel.packed import PackedScene


class VisibilityGraph:
    """A local visibility graph with dynamic maintenance operations.

    ``method`` selects the visibility backend by name or instance (see
    :mod:`repro.visibility.kernel.backend`): ``"python-sweep"`` (alias
    ``"sweep"``) is the paper's rotational plane sweep [SS84],
    ``"numpy-kernel"`` the vectorized equivalent; both assume obstacle
    boundaries do not cross each other (disjoint interiors — the
    paper's standing assumption).  ``"naive"`` is the exact pairwise
    oracle, slower but valid even for overlapping obstacles.  ``None``
    auto-picks (env ``REPRO_VISIBILITY_BACKEND``, else the numpy
    kernel when numpy is importable).
    """

    __slots__ = (
        "_adj",
        "_obstacles",
        "_incident",
        "_free",
        "_boundary",
        "_edges",
        "_obstacle_revision",
        "_backend",
        "_packed",
        "method",
    )

    def __init__(self, method: "str | VisibilityBackend | None" = None) -> None:
        self._backend = resolve_backend(method)
        self.method = self._backend.name
        self._obstacle_revision = 0
        self._adj: dict[Point, dict[Point, float]] = {}
        self._obstacles: dict[int, Obstacle] = {}
        self._incident: dict[Point, list[BoundaryEdge]] = {}
        self._free: set[Point] = set()
        self._boundary: dict[Point, tuple[Obstacle, ...]] = {}
        self._edges: list[BoundaryEdge] = []
        self._packed: "PackedScene | None" = None

    # -------------------------------------------------------------- build
    @classmethod
    def build(
        cls,
        points: Iterable[Point],
        obstacles: Iterable[Obstacle],
        *,
        method: "str | VisibilityBackend | None" = None,
    ) -> "VisibilityGraph":
        """Construct a graph over ``points`` and ``obstacles`` in one pass.

        With a sweep backend this is the paper's
        ``build_visibility_graph`` ([SS84], one rotational sweep per
        node, no tangent simplification).
        """
        graph = cls(method=method)
        for obs in obstacles:
            graph._register_obstacle(obs)
        for p in points:
            graph._register_free_point(p)
        for node in list(graph._adj):
            for w in graph._visible_from(node):
                graph._set_edge(node, w)
        return graph

    def _visible_from(self, node: Point) -> list[Point]:
        return self._backend.visible_from(node, self)

    def packed_scene(self) -> "PackedScene":
        """The scene flattened into numpy arrays (built lazily, then
        kept in sync by the dynamic-update hooks)."""
        if self._packed is None:
            from repro.visibility.kernel.packed import PackedScene

            packed = PackedScene()
            for obs in self._obstacles.values():
                packed.add_obstacle(obs)
            for p in self._free:
                packed.add_free_point(p)
            self._packed = packed
        return self._packed

    # ------------------------------------------------------- SweepScene API
    def sweep_points(self) -> Iterator[Point]:
        """Every node (obstacle vertices and free points)."""
        return iter(self._adj)

    def incident_edges(self, v: Point) -> Sequence[BoundaryEdge]:
        """Boundary edges having ``v`` as an endpoint."""
        return self._incident.get(v, ())

    def boundary_edges(self) -> Iterable[BoundaryEdge]:
        """All obstacle boundary edges."""
        return self._edges

    def boundary_obstacles(self, p: Point) -> Sequence[Obstacle]:
        """Obstacles whose boundary contains ``p``.

        Known nodes answer from the registration-time cache; unknown
        probe points (e.g. ONN candidates evaluated against a shared
        distance field without being added to the graph) are checked on
        the fly, so the sweep's interior-departure test stays correct
        for entities lying exactly on obstacle boundaries.
        """
        cached = self._boundary.get(p)
        if cached is not None:
            return cached
        if p in self._adj:
            return ()
        return tuple(
            obs
            for obs in self._obstacles.values()
            if obs.mbr.expanded(1e-9).contains_point(p)
            and obs.polygon.on_boundary(p)
        )

    def scene_obstacles(self) -> Sequence[Obstacle]:
        """All obstacles currently in the graph."""
        return list(self._obstacles.values())

    # ------------------------------------------------------------ inspection
    @property
    def node_count(self) -> int:
        """Number of graph nodes."""
        return len(self._adj)

    @property
    def edge_count(self) -> int:
        """Number of undirected visibility edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def nodes(self) -> Iterator[Point]:
        """Iterate over all nodes."""
        return iter(self._adj)

    def has_node(self, p: Point) -> bool:
        """True when ``p`` is a node."""
        return p in self._adj

    def neighbors(self, p: Point) -> Mapping[Point, float]:
        """Adjacent nodes with edge weights (Euclidean lengths)."""
        try:
            return self._adj[p]
        except KeyError:
            raise QueryError(f"{p!r} is not a node of this visibility graph") from None

    @property
    def obstacle_revision(self) -> int:
        """Monotone counter bumped whenever an obstacle is incorporated.

        Free-point additions/removals do not bump it: shortest paths
        turn only at obstacle vertices, so distances between existing
        nodes can change only when the obstacle set does.  Structures
        derived from the graph (e.g. a cached Dijkstra field) compare
        revisions instead of being invalidated by hand.
        """
        return self._obstacle_revision

    def has_obstacle(self, oid: int) -> bool:
        """True when the obstacle with id ``oid`` is in the graph."""
        return oid in self._obstacles

    def obstacle_ids(self) -> set[int]:
        """Ids of all obstacles in the graph."""
        return set(self._obstacles)

    def free_points(self) -> set[Point]:
        """The current free points (entities / query points)."""
        return set(self._free)

    # ------------------------------------------------------- dynamic updates
    def rebuild(self, obstacles: Iterable[Obstacle]) -> None:
        """Replace the obstacle set in place, keeping all free points.

        Deletions cannot be applied incrementally (edges the obstacle
        blocked would have to be rediscovered), so the graph is rebuilt
        from scratch — but *in place*, preserving object identity:
        holders of this graph (cached entries, distance fields) see the
        new obstacle set through the ``obstacle_revision`` bump instead
        of dangling on a stale copy.
        """
        free = list(self._free)
        self._adj.clear()
        self._obstacles.clear()
        self._incident.clear()
        self._free.clear()
        self._boundary.clear()
        self._edges.clear()
        self._packed = None
        self._obstacle_revision += 1
        for obs in obstacles:
            self._register_obstacle(obs)
        for p in free:
            self._register_free_point(p)
        for node in list(self._adj):
            for w in self._visible_from(node):
                self._set_edge(node, w)

    def add_obstacle(self, obs: Obstacle) -> bool:
        """Incorporate a new obstacle (paper's ``add_obstacle``).

        Removes existing edges crossing the polygon's interior, then
        runs one rotational sweep per new vertex.  Returns ``False``
        when the obstacle was already present.
        """
        if obs.oid in self._obstacles:
            return False
        poly = obs.polygon
        self._remove_edges_crossing(poly)
        new_vertices = self._register_obstacle(obs)
        # Entities lying on the new polygon's boundary gain a membership.
        for p in self._free:
            if poly.on_boundary(p):
                self._boundary[p] = self._boundary.get(p, ()) + (obs,)
        for v in new_vertices:
            for w in self._visible_from(v):
                self._set_edge(v, w)
        return True

    def add_entity(self, p: Point) -> bool:
        """Add a free point and connect it to all visible nodes.

        Returns ``False`` when ``p`` already is a node (e.g. the query
        point, a duplicate entity, or an obstacle vertex).
        """
        if p in self._adj:
            return False
        self._register_free_point(p)
        for w in self._visible_from(p):
            self._set_edge(p, w)
        return True

    def delete_entity(self, p: Point) -> bool:
        """Remove a free point and its incident edges.

        Obstacle vertices cannot be deleted; returns ``False`` for them
        and for unknown points.
        """
        if p not in self._free:
            return False
        for nbr in list(self._adj[p]):
            del self._adj[nbr][p]
        del self._adj[p]
        self._free.discard(p)
        self._boundary.pop(p, None)
        if self._packed is not None:
            self._packed.remove_free_point(p)
        return True

    # ------------------------------------------------------------- internals
    def _register_obstacle(self, obs: Obstacle) -> list[Point]:
        self._obstacles[obs.oid] = obs
        self._obstacle_revision += 1
        if self._packed is not None:
            self._packed.add_obstacle(obs)
        new_vertices: list[Point] = []
        for a, b in obs.polygon.edges():
            edge = BoundaryEdge(a, b, obs.oid)
            self._edges.append(edge)
            for v in (a, b):
                self._incident.setdefault(v, []).append(edge)
        for v in obs.polygon.vertices:
            if v not in self._adj:
                self._adj[v] = {}
                new_vertices.append(v)
            # A free point coinciding with the new vertex is promoted to
            # an obstacle vertex: it keeps its node (and edges) but can
            # no longer be removed by delete_entity, which would tear an
            # obstacle corner out of the graph.
            self._free.discard(v)
            self._boundary[v] = self._boundary.get(v, ()) + (obs,)
        return new_vertices

    def _register_free_point(self, p: Point) -> None:
        if p in self._incident:
            # p coincides with an obstacle vertex: already a node, and
            # it must not enter _free — delete_entity would tear the
            # obstacle corner out of the graph (the reverse order,
            # obstacle arriving second, is handled by the promotion in
            # _register_obstacle).
            return
        self._adj.setdefault(p, {})
        self._free.add(p)
        if self._packed is not None:
            self._packed.add_free_point(p)
        membership = tuple(
            obs
            for obs in self._obstacles.values()
            if obs.polygon.on_boundary(p)
        )
        if membership:
            self._boundary[p] = membership

    def _set_edge(self, u: Point, v: Point) -> None:
        if u == v:
            return
        w = u.distance(v)
        self._adj[u][v] = w
        self._adj[v][u] = w

    def _remove_edges_crossing(self, poly: Polygon) -> None:
        mbr = poly.mbr
        for u in list(self._adj):
            for v in list(self._adj[u]):
                if not (u < v):
                    continue
                seg = Rect(
                    min(u.x, v.x), min(u.y, v.y), max(u.x, v.x), max(u.y, v.y)
                )
                if mbr.intersects(seg) and poly.crosses_interior(u, v):
                    del self._adj[u][v]
                    del self._adj[v][u]
