"""Rotational plane sweep for visible-vertex computation [SS84].

For a sweep center ``p``, events (all obstacle vertices plus any free
points in the scene) are processed in increasing polar angle; a set of
*open edges* — obstacle edges straddling the current ray, ordered by
intersection distance — decides whether each event point is visible.
Each sweep costs ``O(n log n)`` for ``n`` events, giving the
``O(n^2 log n)`` graph construction the paper reports.

Degenerate contacts (rays through vertices, collinear boundary runs,
entities lying exactly on obstacle edges) are resolved by delegating
the single affected decision to the exact oracle
(:func:`repro.visibility.naive.is_visible`), so the sweep is fast in
general position and exact everywhere.
"""

from __future__ import annotations

from typing import Protocol, Iterable, Sequence

from repro.geometry.constants import EPS
from repro.geometry.point import Point
from repro.geometry.segment import CCW, CW, ccw, segment_intersection_params
from repro.model import Obstacle
from repro.visibility.edges import BoundaryEdge, OpenEdges
from repro.visibility.ordering import sort_events

#: Blocking classification for the closest open edge.
_CLEAR = 0
_BLOCKED = 1
_AMBIGUOUS = 2


class SweepScene(Protocol):
    """What the sweep needs to know about the world.

    :class:`repro.visibility.graph.VisibilityGraph` implements this
    protocol; tests provide lightweight fakes.
    """

    def sweep_points(self) -> Iterable[Point]:
        """Every event point: obstacle vertices and free points."""

    def incident_edges(self, v: Point) -> Sequence[BoundaryEdge]:
        """Obstacle boundary edges having ``v`` as an endpoint."""

    def boundary_edges(self) -> Iterable[BoundaryEdge]:
        """All obstacle boundary edges in the scene."""

    def boundary_obstacles(self, p: Point) -> Sequence[Obstacle]:
        """Obstacles whose boundary contains ``p`` (vertices included)."""

    def scene_obstacles(self) -> Sequence[Obstacle]:
        """All obstacles in the scene (for the exact fallback)."""


def visible_from(p: Point, scene: SweepScene) -> list[Point]:
    """All scene points visible from ``p``, via one rotational sweep."""
    events = [w for w in scene.sweep_points() if w != p]
    if not events:
        return []
    obstacles = scene.scene_obstacles()
    p_boundary = scene.boundary_obstacles(p)
    # A center strictly inside an obstacle sees nothing: every segment
    # leaves through the interior.  (Valid scenes never place points
    # there, but the sweep must agree with the exact oracle — and the
    # other backends — even on such inputs.)  A boundary point cannot
    # be strictly interior under the disjoint-interiors assumption, so
    # the scan is skipped for the vertex centers dominating builds.
    if not p_boundary:
        for obs in obstacles:
            if obs.polygon.contains(p):
                return []
    events = sort_events(p, events)
    open_edges = OpenEdges(p)
    _load_initial_edges(p, scene, open_edges)
    visible: list[Point] = []
    for w in events:
        incident = scene.incident_edges(w)
        # Close edges ending at w on the already-swept (clockwise) side.
        for edge in incident:
            if edge.has_endpoint(p):
                continue
            if ccw(p, w, edge.other(w)) == CW:
                open_edges.delete(w, edge)
        if _is_visible(p, w, open_edges, obstacles, p_boundary):
            visible.append(w)
        # Open edges starting at w on the yet-to-sweep side.
        for edge in incident:
            if edge.has_endpoint(p):
                continue
            if ccw(p, w, edge.other(w)) == CCW:
                open_edges.insert(w, edge)
    return visible


def _is_visible(
    p: Point,
    w: Point,
    open_edges: OpenEdges,
    obstacles: Sequence[Obstacle],
    p_boundary: Sequence[Obstacle],
) -> bool:
    if open_edges:
        status = _blocking_status(p, w, open_edges.smallest())
        if status == _BLOCKED:
            return False
        if status == _AMBIGUOUS:
            return _exact_visible(p, w, obstacles)
    # No open edge blocks the segment.  The remaining hazard is a
    # segment that leaves ``p`` straight through the interior of an
    # obstacle whose boundary contains ``p`` (an interior diagonal of
    # p's own polygon, or p being an entity on an obstacle edge): such
    # a segment generates no crossing events at all.
    for obs in p_boundary:
        if obs.polygon.crosses_interior(p, w):
            return False
    return True


def _blocking_status(p: Point, w: Point, edge: BoundaryEdge) -> int:
    """Classify how the closest open edge relates to segment ``p-w``.

    ``_BLOCKED``  — proper interior crossing: definitely invisible.
    ``_CLEAR``    — no contact before ``w``: this edge cannot block, and
                    since it is the closest, nothing does.
    ``_AMBIGUOUS``— grazing contact (through a vertex, collinear run,
                    contact at an endpoint): delegate to the oracle.
    """
    params = segment_intersection_params(p, w, edge.p1, edge.p2)
    if not params:
        return _CLEAR
    t0 = params[0]
    t1 = params[-1]
    seg_len = p.distance(w)
    tol = EPS * (seg_len + 1.0) / (seg_len + EPS)
    if t0 >= 1.0 - tol:
        return _CLEAR  # touches only at (or beyond) w
    # Contact strictly before w.  Proper transversal crossing?
    d1 = ccw(edge.p1, edge.p2, p)
    d2 = ccw(edge.p1, edge.p2, w)
    d3 = ccw(p, w, edge.p1)
    d4 = ccw(p, w, edge.p2)
    if d1 * d2 < 0 and d3 * d4 < 0 and t0 > tol and t1 < 1.0 - tol:
        return _BLOCKED
    return _AMBIGUOUS


def _exact_visible(p: Point, w: Point, obstacles: Sequence[Obstacle]) -> bool:
    from repro.visibility.naive import is_visible

    return is_visible(p, w, obstacles)


def _load_initial_edges(
    p: Point, scene: SweepScene, open_edges: OpenEdges
) -> None:
    """Open every edge properly crossing the initial ray (angle 0, +x).

    Edges merely touching the ray at an endpoint are skipped: they are
    opened/closed when the sweep reaches that endpoint's event.
    """
    w0 = Point(p.x + 1.0, p.y)
    for edge in scene.boundary_edges():
        if edge.has_endpoint(p):
            continue
        a, b = edge.p1, edge.p2
        # Strict straddle of the horizontal line through p.
        if (a.y - p.y) * (b.y - p.y) >= 0.0:
            continue
        # Intersection with the line y == p.y must be strictly right of p.
        t = (p.y - a.y) / (b.y - a.y)
        x_cross = a.x + t * (b.x - a.x)
        if x_cross > p.x + EPS * (abs(p.x) + 1.0):
            open_edges.insert(w0, edge)
