"""The canonical sweep-event ordering, defined exactly once.

Every visibility backend processes (or at least reports) events in the
same order: ascending polar angle around the sweep center, ties broken
by ascending squared distance.  Both the pure-python rotational sweep
(:mod:`repro.visibility.sweep`) and the vectorized kernel
(:mod:`repro.visibility.kernel.numpy_sweep`) obtain their ordering from
this module, so the tie-break rule cannot silently diverge between
backends.
"""

from __future__ import annotations

import math
from typing import Iterable, TYPE_CHECKING

from repro.geometry.point import Point

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy


def event_angle(p: Point, w: Point) -> float:
    """Polar angle of ``w`` around ``p`` in ``[0, 2*pi)``."""
    a = math.atan2(w.y - p.y, w.x - p.x)
    if a < 0.0:
        a += 2.0 * math.pi
    return a


def event_sort_key(p: Point, w: Point) -> tuple[float, float]:
    """The canonical per-event sort key: ``(angle, squared distance)``."""
    return (event_angle(p, w), p.distance_sq(w))


def sort_events(p: Point, events: Iterable[Point]) -> list[Point]:
    """Events ordered for a sweep around ``p`` (angle, then distance)."""
    return sorted(events, key=lambda w: event_sort_key(p, w))


def order_events_array(
    angles: "numpy.ndarray", dist_sq: "numpy.ndarray"
) -> "numpy.ndarray":
    """Indices ordering batched events under the same key as
    :func:`event_sort_key`: primary key ``angles``, secondary ``dist_sq``.
    """
    import numpy as np

    return np.lexsort((dist_sq, angles))
