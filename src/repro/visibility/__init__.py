"""Local visibility graphs (paper Secs. 2.3 and 4).

The obstructed distance between two points equals the shortest path in
the *visibility graph* over the obstacle vertices plus the two points
[LW79].  The paper builds **local** graphs on-line from only the
obstacles relevant to a query, and maintains them dynamically with
``add_obstacle`` / ``add_entity`` / ``delete_entity``.

Construction uses the rotational plane sweep of Sharir & Schorr [SS84]
(:mod:`repro.visibility.sweep`); a naive exact checker
(:mod:`repro.visibility.naive`) serves as the reference oracle for the
property-based tests and as the fallback for degenerate contact cases.
"""

from repro.visibility.edges import BoundaryEdge, OpenEdges
from repro.visibility.graph import VisibilityGraph
from repro.visibility.naive import is_visible, naive_visible_from
from repro.visibility.shortest_path import (
    bounded_dijkstra,
    dijkstra,
    shortest_path,
    shortest_path_dist,
)
from repro.visibility.sweep import visible_from

__all__ = [
    "BoundaryEdge",
    "OpenEdges",
    "VisibilityGraph",
    "is_visible",
    "naive_visible_from",
    "visible_from",
    "dijkstra",
    "bounded_dijkstra",
    "shortest_path",
    "shortest_path_dist",
]
