"""Local visibility graphs (paper Secs. 2.3 and 4).

The obstructed distance between two points equals the shortest path in
the *visibility graph* over the obstacle vertices plus the two points
[LW79].  The paper builds **local** graphs on-line from only the
obstacles relevant to a query, and maintains them dynamically with
``add_obstacle`` / ``add_entity`` / ``delete_entity``.

Construction runs one rotational sweep per node through a pluggable
:class:`~repro.visibility.kernel.backend.VisibilityBackend`: the
pure-python sweep of Sharir & Schorr [SS84]
(:mod:`repro.visibility.sweep`), its vectorized numpy equivalent
(:mod:`repro.visibility.kernel`), or a naive exact checker
(:mod:`repro.visibility.naive`) that doubles as the reference oracle
for the property-based tests and as the fallback for degenerate
contact cases.
"""

from repro.visibility.edges import BoundaryEdge, OpenEdges
from repro.visibility.graph import VisibilityGraph
from repro.visibility.kernel.backend import (
    VisibilityBackend,
    available_backends,
    default_backend_name,
    resolve_backend,
)
from repro.visibility.naive import is_visible, naive_visible_from
from repro.visibility.ordering import event_angle, event_sort_key, sort_events
from repro.visibility.shortest_path import (
    bounded_dijkstra,
    dijkstra,
    shortest_path,
    shortest_path_dist,
)
from repro.visibility.sweep import visible_from

__all__ = [
    "BoundaryEdge",
    "OpenEdges",
    "VisibilityBackend",
    "VisibilityGraph",
    "available_backends",
    "default_backend_name",
    "event_angle",
    "event_sort_key",
    "is_visible",
    "naive_visible_from",
    "resolve_backend",
    "sort_events",
    "visible_from",
    "dijkstra",
    "bounded_dijkstra",
    "shortest_path",
    "shortest_path_dist",
]
