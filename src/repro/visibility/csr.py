"""Frozen CSR views of visibility graphs + int-indexed Dijkstra.

The dict-of-dicts adjacency of :class:`~repro.visibility.graph.
VisibilityGraph` is ideal for the paper's dynamic maintenance
operations but terrible for the query-side steady state (PR 4-6's warm
caches): every Dijkstra hashes ``Point`` objects, allocates
``(key, tiebreak, Point)`` heap tuples, and walks per-node dicts.
:class:`CSRGraph` freezes one *structure revision* of a graph into
flat arrays — ``indptr``/``indices``/``weights`` compressed sparse
rows plus per-node coordinates — so shortest paths run over ``int32``
node ids with an array-backed heap and vectorized edge relaxation, and
the last-leg minimisation ``min_v d[v] + |p - v|`` of
:class:`~repro.core.distance.SourceDistanceField` becomes one numpy
expression.

Parity contract: edge weights are copied verbatim from the live
adjacency and relaxations use the same float64 ``d + w`` arithmetic
(IEEE elementwise, identical scalar or vectorized), so settled
distances are bit-identical to
:func:`repro.visibility.shortest_path.dijkstra` — the heap order may
differ on ties, but the settled *values* are the same minimum over the
same relaxation set.

This module requires numpy; the engine dispatcher
(:mod:`repro.runtime.field`) never imports it when numpy is missing or
``REPRO_FIELD_ENGINE=python`` forces the dict path.
"""

from __future__ import annotations

from math import inf
from typing import Iterable, TYPE_CHECKING

import numpy as np

from repro.geometry.point import Point
from repro.obs.trace import TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.visibility.graph import VisibilityGraph


class FlatHeap:
    """Array-backed binary min-heap over ``(float64 key, int32 node)``.

    Replaces ``heapq`` over ``(distance, tiebreak, Point)`` tuples: no
    tuple allocation per entry, no ``Point`` comparisons, and pushes
    arrive in vectorized batches (one per relaxed CSR row).  Ties pop
    in unspecified order — Dijkstra's settled values do not depend on
    it.
    """

    __slots__ = ("_keys", "_nodes", "_size")

    def __init__(self, capacity: int = 256) -> None:
        self._keys = np.empty(capacity, dtype=np.float64)
        self._nodes = np.empty(capacity, dtype=np.int32)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _grow(self, need: int) -> None:
        capacity = len(self._keys)
        if need <= capacity:
            return
        new = max(capacity * 2, need)
        keys = np.empty(new, dtype=np.float64)
        nodes = np.empty(new, dtype=np.int32)
        keys[: self._size] = self._keys[: self._size]
        nodes[: self._size] = self._nodes[: self._size]
        self._keys = keys
        self._nodes = nodes

    def _sift_up(self, i: int, key: float, node: int) -> None:
        keys = self._keys
        nodes = self._nodes
        while i > 0:
            parent = (i - 1) >> 1
            pk = keys[parent]
            if key < pk:
                keys[i] = pk
                nodes[i] = nodes[parent]
                i = parent
            else:
                break
        keys[i] = key
        nodes[i] = node

    def push(self, key: float, node: int) -> None:
        """Insert one entry."""
        self._grow(self._size + 1)
        i = self._size
        self._size += 1
        self._sift_up(i, key, node)

    def push_many(self, keys: "np.ndarray", nodes: "np.ndarray") -> None:
        """Insert a batch of entries (one relaxed CSR row)."""
        count = len(keys)
        self._grow(self._size + count)
        for key, node in zip(keys.tolist(), nodes.tolist()):
            i = self._size
            self._size += 1
            self._sift_up(i, key, node)

    def pop(self) -> tuple[float, int]:
        """Remove and return the minimum ``(key, node)``."""
        keys = self._keys
        nodes = self._nodes
        top_key = float(keys[0])
        top_node = int(nodes[0])
        self._size -= 1
        size = self._size
        if size > 0:
            key = float(keys[size])
            node = int(nodes[size])
            i = 0
            child = 1
            while child < size:
                right = child + 1
                if right < size and keys[right] < keys[child]:
                    child = right
                ck = keys[child]
                if ck < key:
                    keys[i] = ck
                    nodes[i] = nodes[child]
                    i = child
                    child = 2 * i + 1
                else:
                    break
            keys[i] = key
            nodes[i] = node
        return top_key, top_node


class CSRGraph:
    """One visibility graph frozen into flat arrays.

    ``points`` fixes the node order (``index`` maps back); ``xs``/``ys``
    are the node coordinates; ``indptr``/``indices``/``weights`` are
    the CSR adjacency with weights copied verbatim from the live graph.
    ``fields`` caches one full-Dijkstra distance array per source node
    — the warm-stream payoff: repeated queries at a cached centre skip
    the Dijkstra entirely.
    """

    __slots__ = (
        "points",
        "index",
        "xs",
        "ys",
        "indptr",
        "indices",
        "weights",
        "fields",
        "anchors",
        "_anchors_revision",
    )

    def __init__(
        self,
        points: list[Point],
        xs: "np.ndarray",
        ys: "np.ndarray",
        indptr: "np.ndarray",
        indices: "np.ndarray",
        weights: "np.ndarray",
    ) -> None:
        self.points = points
        self.index = {p: i for i, p in enumerate(points)}
        self.xs = xs
        self.ys = ys
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.fields: dict[int, "np.ndarray"] = {}
        self.anchors: dict[Point, list[Point]] = {}
        self._anchors_revision: "int | None" = None

    @classmethod
    def freeze(cls, graph: "VisibilityGraph") -> "CSRGraph":
        """Flatten ``graph``'s current adjacency (node insertion order)."""
        adj = graph._adj
        points = list(adj)
        n = len(points)
        index = {p: i for i, p in enumerate(points)}
        xs = np.fromiter((p.x for p in points), dtype=np.float64, count=n)
        ys = np.fromiter((p.y for p in points), dtype=np.float64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            np.fromiter((len(adj[p]) for p in points), dtype=np.int64, count=n),
            out=indptr[1:],
        )
        m = int(indptr[-1])
        indices = np.empty(m, dtype=np.int32)
        weights = np.empty(m, dtype=np.float64)
        pos = 0
        for p in points:
            for q, w in adj[p].items():
                indices[pos] = index[q]
                weights[pos] = w
                pos += 1
        csr = cls(points, xs, ys, indptr, indices, weights)
        return csr

    @property
    def node_count(self) -> int:
        """Number of frozen nodes."""
        return len(self.points)

    @property
    def edge_count(self) -> int:
        """Number of undirected frozen edges."""
        return len(self.indices) // 2

    def dijkstra(
        self,
        source: int,
        *,
        bound: float = inf,
        targets: "Iterable[int] | None" = None,
    ) -> tuple["np.ndarray", "np.ndarray"]:
        """Distances from node id ``source``: ``(dist, settled)`` arrays.

        Same early-exit semantics as
        :func:`repro.visibility.shortest_path.dijkstra`: expansion
        stops beyond ``bound`` (nodes at exactly ``bound`` settle) and,
        with ``targets``, as soon as every target id is settled or
        proven unreachable within the bound.  ``dist`` holds ``inf``
        for unsettled nodes; ``settled`` marks final values.
        """
        n = len(self.points)
        dist = np.full(n, np.inf)
        best = np.full(n, np.inf)
        settled = np.zeros(n, dtype=bool)
        remaining = set(targets) if targets is not None else None
        indptr = self.indptr
        indices = self.indices
        weights = self.weights
        heap = FlatHeap()
        best[source] = 0.0
        heap.push(0.0, source)
        while len(heap):
            d, node = heap.pop()
            if settled[node] or d > best[node]:
                continue
            if d > bound:
                break
            settled[node] = True
            dist[node] = d
            if remaining is not None:
                remaining.discard(node)
                if not remaining:
                    break
            lo = indptr[node]
            hi = indptr[node + 1]
            nbrs = indices[lo:hi]
            nd = d + weights[lo:hi]
            improve = (~settled[nbrs]) & (nd <= bound) & (nd < best[nbrs])
            if improve.any():
                nbrs = nbrs[improve]
                nd = nd[improve]
                best[nbrs] = nd
                heap.push_many(nd, nbrs)
        return dist, settled

    def anchors_for(
        self, p: Point, graph: "VisibilityGraph"
    ) -> tuple["np.ndarray", "np.ndarray", "list[Point] | None"]:
        """The last-leg geometry from off-graph point ``p``:
        ``(anchor ids, euclidean legs, off-index anchors)``.

        Memoizes :func:`~repro.visibility.sweep.visible_from` — plus
        the frozen-id lookup and the vectorized ``|p - v|`` legs, which
        depend only on ``p`` and the anchor set — per *live* structure
        revision: on warm streams (repeat candidates, stable topology)
        the sweep runs once per candidate instead of once per query.
        Any topology change clears the memo, keeping the answers
        identical to a fresh sweep — and therefore to the reference
        engine, which re-sweeps every call.  Anchors admitted to the
        live graph after this freeze have no frozen id and are returned
        separately for the caller's overlay handling.
        """
        from repro.visibility.sweep import visible_from

        revision = graph.structure_revision
        if revision != self._anchors_revision:
            self.anchors.clear()
            self._anchors_revision = revision
        cached = self.anchors.get(p)
        if cached is None:
            anchors = visible_from(p, graph)
            ids = [self.index[v] for v in anchors if v in self.index]
            ai = np.fromiter(ids, dtype=np.int64, count=len(ids))
            dx = self.xs[ai] - p.x
            dy = self.ys[ai] - p.y
            legs = np.sqrt(dx * dx + dy * dy)
            extras = [v for v in anchors if v not in self.index] or None
            cached = (ai, legs, extras)
            self.anchors[p] = cached
        return cached

    def field(self, source: int) -> "np.ndarray":
        """The cached full distance field from node id ``source``."""
        cached = self.fields.get(source)
        if cached is None:
            cached, __ = self.dijkstra(source)
            self.fields[source] = cached
        return cached


def frozen(graph: "VisibilityGraph", *, stats=None) -> CSRGraph:
    """The CSR view of ``graph``'s current structure revision.

    Freezes lazily and caches the result on the graph itself
    (``graph._csr``), so every field over an unchanged graph — across
    queries, across batches — shares one set of arrays and one
    distance-field cache.  Any topology change (obstacle add/remove,
    entity add/delete, rebuild) moves the structure revision and the
    next call re-freezes.
    """
    revision = graph.structure_revision
    cached = graph._csr
    if cached is not None and cached[0] == revision:
        return cached[1]  # type: ignore[return-value]
    with TRACER.span(
        "field.freeze", nodes=graph.node_count, edges=graph.edge_count
    ):
        csr = CSRGraph.freeze(graph)
    TRACER.count("field.freeze")
    if stats is not None:
        stats.field_freezes += 1
    graph._csr = (revision, csr)
    return csr


def install_frozen(
    graph: "VisibilityGraph",
    points: list[Point],
    indptr: "np.ndarray",
    indices: "np.ndarray",
    weights: "np.ndarray",
) -> CSRGraph:
    """Install deserialized frozen arrays as ``graph``'s CSR view.

    Used by the snapshot loader (format v3): the arrays were frozen
    from an identical graph, so they are adopted under the restored
    graph's current structure revision — the first field evaluation
    after a warm start skips the freeze.
    """
    n = len(points)
    xs = np.fromiter((p.x for p in points), dtype=np.float64, count=n)
    ys = np.fromiter((p.y for p in points), dtype=np.float64, count=n)
    csr = CSRGraph(points, xs, ys, indptr, indices, weights)
    graph._csr = (graph.structure_revision, csr)
    return csr
