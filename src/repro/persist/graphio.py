"""Cached visibility graphs and version stamps, serialized.

A warm runtime is mostly its graph cache: the visibility graphs built
by prior queries, each with its expansion centre, coverage radius,
guest centres and version stamp.  This module flattens one
:class:`~repro.runtime.cache.CachedGraph` into the snapshot payload
and reassembles it on load **without running a single sweep** — nodes
and edges are written as index arrays over a point table (through the
codec's bulk float path, numpy-backed where available), and obstacles
are referenced by id into the snapshot's global obstacle table so
every shard, tree and graph resolves to one shared
:class:`~repro.model.Obstacle` instance per id, exactly as live.

Version stamps round-trip too: plain integers for monolithic sources,
full per-shard vectors (:class:`~repro.runtime.sharding.
ShardVersionStamp`) for sharded ones — so an entry that was stale at
save time is still stale after load, and a fresh one stays fresh.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.errors import DatasetError
from repro.model import Obstacle
from repro.runtime.cache import CachedGraph
from repro.runtime.sharding import ShardVersionStamp
from repro.visibility.graph import VisibilityGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.persist.codec import BinaryReader, BinaryWriter
    from repro.visibility.kernel.backend import VisibilityBackend

_STAMP_INT = 0
_STAMP_SHARD = 1


def write_graph(w: "BinaryWriter", graph: VisibilityGraph) -> None:
    """Serialize one visibility graph as obstacle-id references plus
    node/edge index arrays."""
    obstacles, free, edges = graph.snapshot_parts()
    nodes = list(graph.nodes())
    index = {p: i for i, p in enumerate(nodes)}
    w.u32(len(obstacles))
    for obs in obstacles:
        w.i64(obs.oid)
    w.points(nodes)
    w.u32(len(free))
    for p in free:
        w.u32(index[p])
    w.u32(len(edges))
    for u, v in edges:
        w.u32(index[u])
        w.u32(index[v])


def read_graph(
    r: "BinaryReader",
    table: Mapping[int, Obstacle],
    *,
    backend: "str | VisibilityBackend | None" = None,
) -> VisibilityGraph:
    """Decode one graph written by :func:`write_graph`.

    ``table`` is the snapshot's global obstacle table; a graph
    referencing an id missing from it raises
    :class:`~repro.errors.DatasetError` (the snapshot is internally
    inconsistent).
    """
    oids = [r.i64() for __ in range(r.u32())]
    obstacles = []
    for oid in oids:
        obs = table.get(oid)
        if obs is None:
            raise DatasetError(
                f"cached graph references unknown obstacle id {oid} "
                f"at offset {r.offset}"
            )
        obstacles.append(obs)
    nodes = r.points()

    def node_at(i: int):
        if i >= len(nodes):
            raise DatasetError(
                f"cached graph node index {i} out of range at offset "
                f"{r.offset}"
            )
        return nodes[i]

    free = [node_at(r.u32()) for __ in range(r.u32())]
    edges = [
        (node_at(r.u32()), node_at(r.u32())) for __ in range(r.u32())
    ]
    return VisibilityGraph.restore(obstacles, free, edges, method=backend)


def write_stamp(w: "BinaryWriter", stamp: object) -> None:
    """Serialize a cache entry's version stamp (integer or per-shard)."""
    if isinstance(stamp, ShardVersionStamp):
        center, radius, versions, layout = stamp.snapshot()
        w.u8(_STAMP_SHARD)
        w.f64(center.x)
        w.f64(center.y)
        w.f64(radius)
        w.u64(layout)
        w.u32(len(versions))
        for key in sorted(versions):
            w.u64(key)
            w.u64(versions[key])
    else:
        w.u8(_STAMP_INT)
        w.i64(int(stamp))  # type: ignore[call-overload]


def read_stamp(r: "BinaryReader", source: object) -> object:
    """Decode a version stamp; shard stamps re-bind to ``source`` (the
    restored sharded obstacle index)."""
    from repro.geometry.point import Point

    kind = r.u8()
    if kind == _STAMP_INT:
        return r.i64()
    if kind != _STAMP_SHARD:
        raise DatasetError(
            f"unknown version-stamp kind {kind} at offset {r.offset}"
        )
    if not hasattr(source, "shard_version"):
        raise DatasetError(
            f"per-shard version stamp at offset {r.offset} but the "
            f"restored obstacle source is not sharded"
        )
    center = Point(r.f64(), r.f64())
    radius = r.f64()
    layout = r.u64()
    versions = {}
    for __ in range(r.u32()):
        key = r.u64()
        versions[key] = r.u64()
    return ShardVersionStamp(source, center, radius, versions, layout)  # type: ignore[arg-type]


def write_cache_entry(w: "BinaryWriter", entry: CachedGraph) -> None:
    """Serialize one cache entry: centre, coverage, guests, stamp, graph."""
    w.f64(entry.center.x)
    w.f64(entry.center.y)
    w.f64(entry.covered)
    w.points(entry.guests)
    write_stamp(w, entry.version)
    write_graph(w, entry.graph)


def read_cache_entry(
    r: "BinaryReader",
    table: Mapping[int, Obstacle],
    source: object,
    *,
    backend: "str | VisibilityBackend | None" = None,
) -> CachedGraph:
    """Decode one cache entry written by :func:`write_cache_entry`."""
    from repro.geometry.point import Point

    center = Point(r.f64(), r.f64())
    covered = r.f64()
    guests = r.points()
    stamp = read_stamp(r, source)
    graph = read_graph(r, table, backend=backend)
    entry = CachedGraph(graph, center, covered, stamp)
    for g in guests:
        entry.guests[g] = None
    return entry
