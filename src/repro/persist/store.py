"""The snapshot store: a whole :class:`ObstacleDatabase` on disk.

One snapshot file captures everything the paper's cost model can
observe about a database plus everything its runtime has learned:

* **configuration** — tree layout, cache sizing, spatial-key quantum,
  sharding, the obstacle-id sequence;
* **obstacle table** — every distinct obstacle, stored once by id;
  trees, shards and cached graphs all reference into it, so a restored
  database shares one :class:`~repro.model.Obstacle` instance per id
  exactly as the live one does;
* **sources** — each obstacle set as its R*-tree page image
  (:mod:`repro.index.pageio`) for monolithic storage, or the grid
  geometry plus every per-shard tree (with per-shard mutation
  counters, layout version and Hilbert keys) for sharded storage;
* **entity trees** — page images with point payloads;
* **graph cache** — every cached visibility graph with its coverage
  radius, guest centres and version stamp
  (:mod:`repro.persist.graphio`), in LRU order.

Because page ids, buffer residency and access counters round-trip, a
restored database is *observationally identical*: the same queries
produce bit-identical answers and identical simulated page-miss
counts.  Because the graph cache rides along, it is also *warm*: a
query whose centre was covered before the save builds zero new
visibility graphs after the load.

``dataset_refs`` lets a snapshot pin the source dataset files it was
built from by **content hash** (:func:`repro.datasets.io.content_hash`)
— loads re-hash the files and fail on drift, never trusting mtimes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.core.source import ObstacleIndex, ShardedObstacleIndex
from repro.datasets.io import content_hash
from repro.errors import DatasetError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.index import pageio
from repro.model import Obstacle
from repro.persist import codec
from repro.persist.codec import (
    BinaryReader,
    BinaryWriter,
    read_snapshot_versioned,
    write_snapshot,
)
from repro.persist.graphio import read_cache_entry, write_cache_entry
from repro.persist.journal import (
    MutationJournal,
    apply_record,
    resolve_journal_path,
)
from repro.runtime.sharding import ShardGrid

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import ObstacleDatabase
    from repro.visibility.kernel.backend import VisibilityBackend

_KIND_MONO = 0
_KIND_SHARDED = 1

_STAT_INT = 0
_STAT_FLOAT = 1
_STAT_STR = 2


def _write_runtime_stats(w: BinaryWriter, stats) -> None:
    """The format-2 runtime-stats section: a tagged name/value list.

    Name-keyed (not positional) so counters added to
    :class:`~repro.runtime.stats.RuntimeStats` later neither shift the
    layout nor invalidate older format-2 files."""
    snapshot = stats.snapshot() if stats is not None else {}
    w.u32(len(snapshot))
    for name in sorted(snapshot):
        value = snapshot[name]
        w.str_(name)
        if isinstance(value, bool) or isinstance(value, int):
            w.u8(_STAT_INT)
            w.i64(int(value))
        elif isinstance(value, float):
            w.u8(_STAT_FLOAT)
            w.f64(value)
        else:
            w.u8(_STAT_STR)
            w.str_(str(value))


def _read_runtime_stats(r: BinaryReader, path: str) -> dict[str, object]:
    """Decode the runtime-stats section into a plain dict."""
    out: dict[str, object] = {}
    for __ in range(r.u32()):
        name = r.str_()
        tag = r.u8()
        if tag == _STAT_INT:
            out[name] = r.i64()
        elif tag == _STAT_FLOAT:
            out[name] = r.f64()
        elif tag == _STAT_STR:
            out[name] = r.str_()
        else:
            raise DatasetError(
                f"{path}: unknown runtime-stat tag {tag} at offset "
                f"{r.offset}"
            )
    return out


def _write_frozen_csr(w: BinaryWriter, entries) -> None:
    """The format-3 frozen-CSR section: compiled distance-field arrays.

    One record per cache entry whose graph holds a freeze valid at its
    *current* structure revision (stale freezes are dropped — they
    describe a topology the restored graph will not have).  Node order
    is the freeze order; ``indptr``/``indices`` are stored as u32 (a
    cached local graph never approaches 2**32 nodes or edges) and
    widened on read.  Per-source distance arrays are not stored: they
    are derived data the restored freeze recomputes on first use.
    """
    frozen: list[tuple[int, object]] = []
    for i, entry in enumerate(entries):
        cached = entry.graph._csr
        if cached is not None and cached[0] == entry.graph.structure_revision:
            frozen.append((i, cached[1]))
    w.u32(len(frozen))
    for i, csr in frozen:
        w.u32(i)
        w.points(csr.points)
        w.u32_array(csr.indptr)
        w.u32_array(csr.indices)
        w.f64_array(csr.weights)


def _read_frozen_csr(r: BinaryReader, entries, path: str) -> None:
    """Decode the frozen-CSR section and install the arrays on the
    restored graphs.  Without numpy the records are consumed and
    dropped — the python engine never touches frozen arrays, and the
    graphs simply re-freeze lazily if numpy appears later."""
    try:
        import numpy as np

        from repro.visibility.csr import install_frozen
    except ImportError:  # pragma: no cover - numpy is baked into the image
        np = None
        install_frozen = None
    for __ in range(r.u32()):
        index = r.u32()
        points = r.points()
        indptr = r.u32_array()
        indices = r.u32_array()
        weights = r.f64_array()
        if index >= len(entries):
            raise DatasetError(
                f"{path}: frozen-CSR record references cache entry "
                f"{index} of {len(entries)} at offset {r.offset}"
            )
        if install_frozen is None:
            continue
        install_frozen(
            entries[index].graph,
            points,
            np.asarray(indptr, dtype=np.int64),
            np.asarray(indices, dtype=np.int32),
            np.asarray(weights, dtype=np.float64),
        )


def _include_cache_default() -> bool:
    """Whether snapshots include the graph cache (warm start).

    Governed by ``REPRO_SNAPSHOT_CACHE``: ``1`` (default) serializes
    every cached visibility graph; ``0`` writes a cold snapshot
    (structure and counters only).
    """
    raw = os.environ.get("REPRO_SNAPSHOT_CACHE", "1").strip()
    if raw not in ("0", "1"):
        raise DatasetError(
            f"REPRO_SNAPSHOT_CACHE must be 0 or 1, got {raw!r}"
        )
    return raw == "1"


def _resolve_ref(ref_path: str, snapshot_path: str) -> str | None:
    """Locate a referenced dataset file: the recorded path as-is
    (absolute, or relative to the loader's cwd), falling back to the
    snapshot file's own directory for relative refs — so a snapshot
    saved next to its datasets keeps working when the pair is loaded
    from anywhere."""
    if os.path.exists(ref_path):
        return ref_path
    if not os.path.isabs(ref_path):
        sibling = os.path.join(
            os.path.dirname(os.path.abspath(snapshot_path)), ref_path
        )
        if os.path.exists(sibling):
            return sibling
    return None


def _write_point_payload(w: BinaryWriter, data: object) -> None:
    w.f64(data.x)  # type: ignore[attr-defined]
    w.f64(data.y)  # type: ignore[attr-defined]


def _read_point_payload(r: BinaryReader) -> Point:
    return Point(r.f64(), r.f64())


def _write_obstacle_payload(w: BinaryWriter, data: object) -> None:
    w.i64(data.oid)  # type: ignore[attr-defined]


def _obstacle_payload_reader(table: Mapping[int, Obstacle], path: str):
    """A leaf-payload decoder resolving oid references through the
    snapshot's global obstacle table."""

    def read(r: BinaryReader) -> Obstacle:
        oid = r.i64()
        obs = table.get(oid)
        if obs is None:
            raise DatasetError(
                f"{path}: tree references unknown obstacle id {oid} at "
                f"offset {r.offset}"
            )
        return obs

    return read


def _collect_obstacles(
    state: dict, *, include_cache: bool
) -> dict[int, Obstacle]:
    """Every distinct obstacle the snapshot will reference: tree
    payloads, plus — when the cache is serialized too — obstacles held
    only by cached graphs (e.g. kept by a stale entry after an
    out-of-band tree edit)."""
    table: dict[int, Obstacle] = {}
    for index in state["obstacle_indexes"].values():
        for tree in index.trees():
            for data, __ in tree.items():
                table.setdefault(data.oid, data)
    context = state["context"]
    if include_cache and context is not None:
        for entry in context.cache.entries():
            for obs in entry.graph.scene_obstacles():
                table.setdefault(obs.oid, obs)
    return table


def save_database(
    db: "ObstacleDatabase",
    path: str | Path,
    *,
    dataset_refs: Mapping[str, str | Path] | None = None,
    include_cache: bool | None = None,
) -> None:
    """Serialize ``db`` (structure, counters and warm cache) to ``path``.

    ``dataset_refs`` optionally records source dataset files by content
    hash — :func:`load_database` re-hashes and refuses drifted files.
    ``include_cache=False`` (default from ``REPRO_SNAPSHOT_CACHE``)
    drops the graph cache for a smaller, cold snapshot.
    """
    if include_cache is None:
        include_cache = _include_cache_default()
    state = db._snapshot_state()
    w = BinaryWriter()
    # -- configuration ----------------------------------------------------
    tk = state["tree_kwargs"]
    w.u8(1 if state["bulk"] else 0)
    w.i64(-1 if state["shards"] is None else state["shards"])
    w.u32(state["graph_cache_size"])
    w.f64(state["graph_cache_snap"])
    w.i64(state["next_oid"])
    w.i64(tk.get("page_size") or -1)
    w.f64(tk.get("buffer_fraction") or 0.1)
    w.i64(-1 if tk.get("max_entries") is None else tk["max_entries"])
    w.i64(-1 if tk.get("min_entries") is None else tk["min_entries"])
    # -- dataset refs ------------------------------------------------------
    refs = dict(dataset_refs or {})
    w.u32(len(refs))
    for label in sorted(refs):
        ref_path = str(refs[label])
        w.str_(label)
        w.str_(ref_path)
        w.str_(content_hash(ref_path))
    # -- obstacle table ----------------------------------------------------
    table = _collect_obstacles(state, include_cache=include_cache)
    w.u32(len(table))
    for oid in sorted(table):
        w.i64(oid)
        w.points(table[oid].polygon.vertices)
    # -- obstacle sets -----------------------------------------------------
    indexes = state["obstacle_indexes"]
    w.u32(len(indexes))
    for name, index in indexes.items():
        w.str_(name)
        if isinstance(index, ShardedObstacleIndex):
            w.u8(_KIND_SHARDED)
            grid = index.grid
            w.f64(grid.universe.minx)
            w.f64(grid.universe.miny)
            w.f64(grid.universe.maxx)
            w.f64(grid.universe.maxy)
            w.u32(grid.order)
            w.u64(index.layout_version)
            w.u64(len(index))
            keys = index.shard_keys()
            w.u32(len(keys))
            for key in keys:
                shard = index.shard(key)
                w.u64(key)
                w.u64(shard.mutation_count)
                pageio.write_tree(w, shard.tree, _write_obstacle_payload)
        else:
            w.u8(_KIND_MONO)
            w.u64(index.mutation_count)
            pageio.write_tree(w, index.tree, _write_obstacle_payload)
    # -- entity trees ------------------------------------------------------
    entity_trees = state["entity_trees"]
    w.u32(len(entity_trees))
    for name, tree in entity_trees.items():
        w.str_(name)
        pageio.write_tree(w, tree, _write_point_payload)
    # -- graph cache -------------------------------------------------------
    context = state["context"]
    entries = (
        context.cache.entries() if include_cache and context is not None else []
    )
    w.u32(len(entries))
    for entry in entries:
        write_cache_entry(w, entry)
    # -- runtime stats (format 2) ------------------------------------------
    _write_runtime_stats(w, context.stats if context is not None else None)
    # -- frozen CSR arrays (format 3) --------------------------------------
    # ``codec.FORMAT_VERSION`` is read at call time so a writer pinned
    # to an older version (compatibility tests) omits the section the
    # older reader would reject.
    if codec.FORMAT_VERSION >= 3:
        _write_frozen_csr(w, entries)
    # -- journal-sequence stamp (format 4) ---------------------------------
    # The highest mutation sequence folded into this snapshot (0 for a
    # non-durable database).  Recovery replays only journal records
    # with a higher sequence, so a crash between this write and the
    # journal truncation that follows a compaction never double-applies.
    if codec.FORMAT_VERSION >= 4:
        journal = getattr(db, "_journal", None)
        w.u64(journal.last_seq if journal is not None else 0)
    write_snapshot(path, w.getvalue())


def load_database(
    path: str | Path,
    *,
    backend: "str | VisibilityBackend | None" = None,
    cache_policy: "str | None" = None,
    durable: "str | os.PathLike[str] | None" = None,
) -> "ObstacleDatabase":
    """Restore a database saved by :func:`save_database`.

    The snapshot is decoded and verified in full *before* any database
    is assembled — a corrupt or drifted file raises
    :class:`~repro.errors.DatasetError` (naming the path and offset)
    and leaves no partial state behind.  ``backend`` picks the
    visibility backend of the restored runtime (``None`` auto-picks,
    exactly as the :class:`~repro.core.engine.ObstacleDatabase`
    constructor does); restored cached graphs are reassembled without
    sweeps either way.  ``cache_policy`` likewise selects the restored
    runtime's cache policy (``None`` reads ``REPRO_CACHE_POLICY``) —
    policy is runtime configuration, not snapshot state.

    ``durable`` (``None`` reads ``REPRO_JOURNAL``) names the
    write-ahead mutation journal to recover: its longest durable
    record prefix is replayed over the restored state through the same
    index operations the crashed process used, then the journal stays
    attached and anchored to ``path`` — the recovered database answers
    bit-identically to one that never crashed, and keeps journaling.
    """
    from repro.core.engine import ObstacleDatabase

    name = str(path)
    version, payload = read_snapshot_versioned(path)
    r = BinaryReader(payload, path=path)
    # -- configuration ----------------------------------------------------
    bulk = r.u8() == 1
    shards = r.i64()
    shards = None if shards < 0 else shards
    graph_cache_size = r.u32()
    graph_cache_snap = r.f64()
    next_oid = r.i64()
    page_size = r.i64()
    buffer_fraction = r.f64()
    max_entries = r.i64()
    min_entries = r.i64()
    tree_kwargs = dict(
        page_size=4096 if page_size < 0 else page_size,
        buffer_fraction=buffer_fraction,
        max_entries=None if max_entries < 0 else max_entries,
        min_entries=None if min_entries < 0 else min_entries,
    )
    # -- dataset refs ------------------------------------------------------
    for __ in range(r.u32()):
        label = r.str_()
        ref_path = r.str_()
        expected = r.str_()
        resolved = _resolve_ref(ref_path, name)
        if resolved is None:
            raise DatasetError(
                f"{name}: referenced dataset {label!r} is missing at "
                f"{ref_path}"
            )
        actual = content_hash(resolved)
        if actual != expected:
            raise DatasetError(
                f"{name}: referenced dataset {label!r} at {resolved} "
                f"changed since the snapshot was taken (content hash "
                f"{actual[:12]}... != recorded {expected[:12]}...)"
            )
    # -- obstacle table ----------------------------------------------------
    table: dict[int, Obstacle] = {}
    for __ in range(r.u32()):
        oid = r.i64()
        table[oid] = Obstacle(oid, Polygon(r.points()))
    read_obstacle = _obstacle_payload_reader(table, name)
    # -- obstacle sets -----------------------------------------------------
    obstacle_indexes: dict[int | str, object] = {}
    for __ in range(r.u32()):
        set_name = r.str_()
        kind = r.u8()
        if kind == _KIND_SHARDED:
            universe = Rect(r.f64(), r.f64(), r.f64(), r.f64())
            order = r.u32()
            layout_version = r.u64()
            count = r.u64()
            restored_shards: dict[int, ObstacleIndex] = {}
            for __s in range(r.u32()):
                key = r.u64()
                mutations = r.u64()
                tree = pageio.read_tree(r, read_obstacle)
                restored_shards[key] = ObstacleIndex(
                    tree, mutations=mutations
                )
            obstacle_indexes[set_name] = ShardedObstacleIndex.restore(
                ShardGrid(universe, order),
                name=f"obstacles:{set_name}",
                shards=restored_shards,
                layout_version=layout_version,
                count=count,
                **tree_kwargs,
            )
        elif kind == _KIND_MONO:
            mutations = r.u64()
            tree = pageio.read_tree(r, read_obstacle)
            obstacle_indexes[set_name] = ObstacleIndex(
                tree, mutations=mutations
            )
        else:
            raise DatasetError(
                f"{name}: unknown obstacle-set kind {kind} at offset "
                f"{r.offset}"
            )
    if not obstacle_indexes:
        raise DatasetError(f"{name}: snapshot contains no obstacle sets")
    # -- entity trees ------------------------------------------------------
    entity_trees = {}
    for __ in range(r.u32()):
        entity_name = r.str_()
        entity_trees[entity_name] = pageio.read_tree(r, _read_point_payload)
    # -- graph cache -------------------------------------------------------
    n_entries = r.u32()
    db = ObstacleDatabase._restore(
        tree_kwargs=tree_kwargs,
        bulk=bulk,
        shards=shards,
        graph_cache_size=graph_cache_size,
        graph_cache_snap=graph_cache_snap,
        next_oid=next_oid,
        obstacle_indexes=obstacle_indexes,  # type: ignore[arg-type]
        entity_trees=entity_trees,
        backend=backend,
        cache_policy=cache_policy,
    )
    context = db.context
    restored_entries = []
    for __ in range(n_entries):
        entry = read_cache_entry(
            r, table, context.source, backend=context.backend
        )
        context.admit_restored(entry)
        restored_entries.append(entry)
    # -- runtime stats (format 2) ------------------------------------------
    # Version-1 snapshots predate the section: their counters restore
    # zeroed (the v1 behaviour), everything else identically.
    if version >= 2:
        restored = _read_runtime_stats(r, name)
        stats = context.stats
        for stat_name, value in restored.items():
            # ``backend`` is configuration, not work: the restored
            # context has already selected its own (possibly different)
            # backend.  Unknown names are counters from another build
            # of this library — ignored, exactly like merge ignores
            # nothing it knows about.
            if stat_name == "backend" or stat_name not in stats.__slots__:
                continue
            setattr(stats, stat_name, value)
    # -- frozen CSR arrays (format 3) --------------------------------------
    # Version-2 files predate the section: their graphs re-freeze
    # lazily at first field evaluation, everything else identically.
    if version >= 3:
        _read_frozen_csr(r, restored_entries, name)
    # -- journal-sequence stamp (format 4) ---------------------------------
    # Version-3 files predate the stamp: they load with 0, meaning
    # every recovered journal record replays (the pre-stamp behaviour).
    base_seq = r.u64() if version >= 4 else 0
    r.expect_end()
    # -- journal recovery --------------------------------------------------
    # Replay happens only now, over a fully verified snapshot: the
    # journal is scanned and decoded in full first (torn tail
    # truncated, corruption raising before anything is applied), then
    # each record with a sequence above the base's folded-sequence
    # stamp goes through the same index operations the crashed process
    # used, and the journal stays attached for further writes.
    # Records at or below the stamp are already in the base — the
    # crash interrupted a compaction after the base rewrite but before
    # the journal truncation — so the truncation is completed instead.
    journal_path = resolve_journal_path(durable)
    if journal_path is not None:
        journal, entries = MutationJournal.recover(journal_path)
        fresh = [record for seq, record in entries if seq > base_seq]
        if entries and not fresh:
            journal.reset()
        for record in fresh:
            apply_record(db, record)
        journal.ensure_seq_floor(base_seq)
        db._attach_journal(journal, base_path=name)
    return db


def snapshot_info(path: str | Path) -> dict[str, object]:
    """A cheap structural summary of a snapshot (no database assembly).

    Returns format version, configuration, per-set obstacle/page
    counts and page-access counters, entity sets, cached-graph
    summaries (centre, coverage radius, guest/node/edge counts),
    runtime counters (format 2) and dataset refs — what the
    ``repro-snapshot info`` command prints.
    """
    name = str(path)
    version, payload = read_snapshot_versioned(path)
    r = BinaryReader(payload, path=path)
    bulk = r.u8() == 1
    shards = r.i64()
    graph_cache_size = r.u32()
    graph_cache_snap = r.f64()
    next_oid = r.i64()
    r.i64()  # page_size
    r.f64()  # buffer_fraction
    r.i64()  # max_entries
    r.i64()  # min_entries
    refs = []
    for __ in range(r.u32()):
        refs.append(
            {"label": r.str_(), "path": r.str_(), "sha256": r.str_()}
        )
    n_obstacles = r.u32()
    for __ in range(n_obstacles):
        r.i64()
        r.points()
    sets = []
    for __ in range(r.u32()):
        set_name = r.str_()
        kind = r.u8()
        if kind == _KIND_SHARDED:
            for __f in range(4):
                r.f64()
            order = r.u32()
            r.u64()  # layout version
            count = r.u64()
            pages = reads = misses = writes = 0
            n_shards = r.u32()
            for __s in range(n_shards):
                r.u64()
                r.u64()
                meta = pageio.read_tree_meta(r, _skip_oid_payload)
                pages += meta["pages"]
                reads += meta["reads"]
                misses += meta["misses"]
                writes += meta["writes"]
            sets.append(
                {
                    "name": set_name,
                    "kind": "sharded",
                    "obstacles": count,
                    "shards": n_shards,
                    "grid_order": order,
                    "pages": pages,
                    "reads": reads,
                    "misses": misses,
                    "writes": writes,
                }
            )
        elif kind == _KIND_MONO:
            r.u64()  # mutations
            meta = pageio.read_tree_meta(r, _skip_oid_payload)
            sets.append(
                {
                    "name": set_name,
                    "kind": "monolithic",
                    "obstacles": meta["size"],
                    "pages": meta["pages"],
                    "reads": meta["reads"],
                    "misses": meta["misses"],
                    "writes": meta["writes"],
                }
            )
        else:
            raise DatasetError(
                f"{name}: unknown obstacle-set kind {kind} at offset "
                f"{r.offset}"
            )
    entities = []
    for __ in range(r.u32()):
        entity_name = r.str_()
        meta = pageio.read_tree_meta(r, _read_point_payload)
        entities.append(
            {
                "name": entity_name,
                "points": meta["size"],
                "pages": meta["pages"],
                "reads": meta["reads"],
                "misses": meta["misses"],
                "writes": meta["writes"],
            }
        )
    cached_graphs = r.u32()
    cache_entries = [_skim_cache_entry(r) for __ in range(cached_graphs)]
    runtime_stats: dict[str, object] = {}
    if version >= 2:
        runtime_stats = _read_runtime_stats(r, name)
    frozen_fields = 0
    if version >= 3:
        frozen_fields = r.u32()
        for __ in range(frozen_fields):
            index = r.u32()
            nodes = len(r.points())
            r.u32_array()  # indptr
            indices = r.u32_array()
            r.f64_array()  # weights
            if index < len(cache_entries):
                cache_entries[index]["frozen_nodes"] = nodes
                cache_entries[index]["frozen_edges"] = len(indices) // 2
    journal_seq = r.u64() if version >= 4 else 0
    return {
        "path": name,
        "format_version": version,
        "bulk": bulk,
        "shards": None if shards < 0 else shards,
        "graph_cache_size": graph_cache_size,
        "graph_cache_snap": graph_cache_snap,
        "next_oid": next_oid,
        "distinct_obstacles": n_obstacles,
        "obstacle_sets": sets,
        "entity_sets": entities,
        "cached_graphs": cached_graphs,
        "cache_entries": cache_entries,
        "frozen_fields": frozen_fields,
        "journal_seq": journal_seq,
        "runtime_stats": runtime_stats,
        "dataset_refs": refs,
    }


def _skim_cache_entry(r: BinaryReader) -> dict[str, object]:
    """Decode one cache-entry record for its summary only (no graph
    reassembly, no obstacle-table resolution)."""
    from repro.persist.graphio import _STAMP_INT, _STAMP_SHARD

    center = Point(r.f64(), r.f64())
    covered = r.f64()
    guests = r.points()
    stamp_kind = r.u8()
    if stamp_kind == _STAMP_INT:
        r.i64()
    elif stamp_kind == _STAMP_SHARD:
        r.f64()  # stamp centre x
        r.f64()  # stamp centre y
        r.f64()  # stamp radius
        r.u64()  # layout version
        for __ in range(r.u32()):
            r.u64()
            r.u64()
    else:
        raise DatasetError(
            f"unknown version-stamp kind {stamp_kind} at offset {r.offset}"
        )
    obstacles = r.u32()
    for __ in range(obstacles):
        r.i64()
    nodes = len(r.points())
    for __ in range(r.u32()):  # free-point indexes
        r.u32()
    edges = r.u32()
    for __ in range(edges):
        r.u32()
        r.u32()
    return {
        "center": (center.x, center.y),
        "covered": covered,
        "guests": len(guests),
        "obstacles": obstacles,
        "nodes": nodes,
        "edges": edges,
        "stamp": "sharded" if stamp_kind == _STAMP_SHARD else "integer",
    }


def _skip_oid_payload(r: BinaryReader) -> int:
    """Obstacle-reference payload skipper for summary decoding."""
    return r.i64()
