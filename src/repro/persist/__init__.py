"""Persistent snapshot store for obstacle databases.

The paper's cost model counts simulated page accesses; this package
makes those pages *real*: an entire
:class:`~repro.core.engine.ObstacleDatabase` — R*-trees node-per-page,
sharded or monolithic obstacle sources with their version history, and
the warm visibility-graph cache — round-trips through one checksummed,
endianness-stable file.

Entry points::

    db.save("scene.snap")                      # ObstacleDatabase method
    db = ObstacleDatabase.load("scene.snap")   # observationally identical
    repro-snapshot save|info|verify ...        # CLI (repro.persist.cli)

Layers: :mod:`repro.persist.framing` owns the shared file header and
the durable atomic write, :mod:`repro.persist.codec` the snapshot
payload primitives (checksums, bulk float arrays),
:mod:`repro.index.pageio` the node <-> page codec,
:mod:`repro.persist.graphio` the cached graphs and version stamps,
:mod:`repro.persist.store` the assembled snapshot, and
:mod:`repro.persist.journal` the write-ahead mutation journal a
durable database (``durable=`` / ``REPRO_JOURNAL``) appends to ahead
of every mutation.
"""

from repro.persist.codec import FORMAT_VERSION, MAGIC
from repro.persist.journal import (
    JOURNAL_MAGIC,
    JOURNAL_VERSION,
    MutationJournal,
    MutationRecord,
    apply_record,
)
from repro.persist.store import load_database, save_database, snapshot_info

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "JOURNAL_MAGIC",
    "JOURNAL_VERSION",
    "MutationJournal",
    "MutationRecord",
    "apply_record",
    "save_database",
    "load_database",
    "snapshot_info",
]
