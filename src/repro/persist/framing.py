"""Shared file framing for every ``repro.persist``-family format.

Snapshots (:mod:`repro.persist.codec`), workload traces
(:mod:`repro.workloads.trace`) and the mutation journal
(:mod:`repro.persist.journal`) all open with the same 28-byte header::

    offset 0   magic            8 bytes
    offset 8   format version   u32
    offset 12  payload length   u64
    offset 20  payload crc32    u32
    offset 24  header crc32     u32      (over bytes [0, 24))
    offset 28  payload          ``payload length`` bytes

This module is the single implementation of that header — packing,
the five-step verification (length, magic, header checksum, version,
payload), and the durable atomic write underneath every save.  Each
format parameterises it with its own magic, version and error-message
nouns, so the formats cannot silently drift apart.

Stream formats (the journal) reuse the header with a zero-length
payload: the bytes after offset 28 are self-checksummed records, not
a single framed payload.

Durability contract of :func:`atomic_write_bytes`: the blob is written
to a uniquely-named temporary sibling (``tempfile.mkstemp`` in the
target's directory, so concurrent writers to the same target never
collide), fsynced, atomically renamed over the target, and the parent
directory is fsynced so the rename itself survives power loss.  After
it returns, a ``kill -9`` or power cut leaves either the complete old
file or the complete new file — never a torn or missing one.
"""

from __future__ import annotations

import os
import struct
import tempfile
import zlib
from pathlib import Path

from repro.errors import DatasetError

_HEAD = struct.Struct("<8sIQI")
_HEAD_CRC = struct.Struct("<I")

#: Total header size; the payload (or record stream) starts here.
HEADER_SIZE = _HEAD.size + _HEAD_CRC.size

#: Magic length — format magics must be exactly this many bytes.
MAGIC_SIZE = 8


def pack_header(magic: bytes, version: int, payload: bytes) -> bytes:
    """The 28-byte checksummed header for ``payload``."""
    head = _HEAD.pack(magic, version, len(payload), zlib.crc32(payload))
    return head + _HEAD_CRC.pack(zlib.crc32(head))


def frame(magic: bytes, version: int, payload: bytes) -> bytes:
    """``payload`` framed under ``magic``/``version`` — the file bytes."""
    return pack_header(magic, version, payload) + payload


def verify_header(
    blob: bytes,
    *,
    magic: bytes,
    max_version: int,
    path: str | Path,
    kind: str,
    what: str,
) -> tuple[int, int, int]:
    """Verify the leading header of ``blob``; returns ``(version,
    payload_length, payload_crc)``.

    ``kind`` is the short noun used in located error messages
    (``"snapshot"``, ``"trace"``...); ``what`` the long one used for
    bad magic (``"repro snapshot"``).  Check order: header length,
    magic, header checksum, version-too-new.  Each failure raises
    :class:`~repro.errors.DatasetError` naming ``path`` and the byte
    offset of the inconsistency.
    """
    name = str(path)
    if len(blob) < HEADER_SIZE:
        raise DatasetError(
            f"{name}: truncated {kind} header at offset {len(blob)} "
            f"(need {HEADER_SIZE} bytes)"
        )
    found_magic, version, payload_len, payload_crc = _HEAD.unpack_from(blob, 0)
    (head_crc,) = _HEAD_CRC.unpack_from(blob, _HEAD.size)
    if found_magic != magic:
        raise DatasetError(f"{name}: not a {what} (bad magic at offset 0)")
    if head_crc != zlib.crc32(blob[: _HEAD.size]):
        raise DatasetError(
            f"{name}: header checksum mismatch at offset {_HEAD.size}"
        )
    if version > max_version:
        raise DatasetError(
            f"{name}: {kind} format version {version} at offset 8 is "
            f"newer than the supported version {max_version}"
        )
    return version, payload_len, payload_crc


def unframe(
    blob: bytes,
    *,
    magic: bytes,
    max_version: int,
    path: str | Path,
    kind: str,
    what: str,
) -> tuple[int, bytes]:
    """Verify a fully-framed file's bytes; returns ``(version, payload)``.

    :func:`verify_header` followed by the payload checks (length, then
    CRC-32) — nothing is decoded past a failure.
    """
    name = str(path)
    version, payload_len, payload_crc = verify_header(
        blob,
        magic=magic,
        max_version=max_version,
        path=path,
        kind=kind,
        what=what,
    )
    payload = blob[HEADER_SIZE:]
    if len(payload) != payload_len:
        raise DatasetError(
            f"{name}: truncated {kind} payload at offset "
            f"{HEADER_SIZE + len(payload)} (expected {payload_len} "
            f"byte(s), found {len(payload)})"
        )
    if zlib.crc32(payload) != payload_crc:
        raise DatasetError(
            f"{name}: payload checksum mismatch at offset {HEADER_SIZE}"
        )
    return version, payload


def read_framed(
    path: str | Path,
    *,
    magic: bytes,
    max_version: int,
    kind: str,
    what: str,
) -> tuple[int, bytes]:
    """Read and :func:`unframe` a file; returns ``(version, payload)``."""
    name = str(path)
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise DatasetError(f"{name}: cannot read {kind} ({exc})") from None
    return unframe(
        blob,
        magic=magic,
        max_version=max_version,
        path=path,
        kind=kind,
        what=what,
    )


def fsync_directory(directory: str) -> None:
    """Fsync ``directory`` so a just-renamed entry survives power loss.

    Best-effort: platforms or filesystems that cannot open/fsync a
    directory are silently tolerated — the rename is still atomic,
    just not durably ordered there.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, blob: bytes) -> None:
    """Durably and atomically replace ``path`` with ``blob``.

    Write to a uniquely-named temporary sibling, fsync it, atomically
    rename it over the target, then fsync the parent directory.  The
    temporary name comes from :func:`tempfile.mkstemp` in the target's
    directory (prefix ``<name>.tmp.``), so concurrent saves of the
    same target never share a temp file; the ``finally`` cleanup only
    ever unlinks the temp file *this* call created.
    """
    target = str(path)
    directory = os.path.dirname(target) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".tmp."
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    finally:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass  # the normal path: the rename consumed it
    fsync_directory(directory)


def write_framed(
    path: str | Path, magic: bytes, version: int, payload: bytes
) -> None:
    """Frame ``payload`` and :func:`atomic_write_bytes` it to ``path``."""
    atomic_write_bytes(path, frame(magic, version, payload))
