"""Binary framing of snapshot files.

Every snapshot is one file::

    offset 0   magic            8 bytes  (``b"RPROSNAP"``)
    offset 8   format version   u32
    offset 12  payload length   u64
    offset 20  payload crc32    u32
    offset 24  header crc32     u32      (over bytes [0, 24))
    offset 28  payload          ``payload length`` bytes

All integers and floats are **explicit little-endian** (``struct``
``"<"`` formats), so a snapshot written on any host reads identically
on any other — the framing never depends on native endianness or
alignment.  The payload is a flat sequence of primitive records
produced by :class:`BinaryWriter` and consumed by
:class:`BinaryReader`; both checksums are CRC-32 (:func:`zlib.crc32`).

Float arrays (coordinate lists) have a bulk path: when numpy is
importable they are written/read through ``ndarray`` buffers
(``dtype="<f8"``), otherwise through :mod:`struct` — the two produce
byte-identical files, so the ``REPRO_SNAPSHOT_ARRAYS`` knob
(``auto``/``numpy``/``struct``) only ever changes speed, never format.

Corruption handling is fail-fast and located: a truncated file, a
flipped byte, or a snapshot written by a newer format version each
raise :class:`~repro.errors.DatasetError` naming the file path and the
byte offset of the inconsistency, before any state is constructed.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Iterable

from repro.errors import DatasetError
from repro.geometry.point import Point
from repro.persist import framing

#: First 8 bytes of every snapshot file.
MAGIC = b"RPROSNAP"

#: The snapshot format this build writes (and the newest it reads).
#: Version history:
#:
#: 1. page-backed trees, obstacle table, graph cache.
#: 2. appends the runtime-stats section (the warm counters of the
#:    metrics registry) after the graph cache; version-1 files load
#:    with zeroed runtime counters.
#: 3. appends the frozen-CSR section (the compiled distance-field
#:    arrays of each cached graph) after the runtime stats; the
#:    section is optional per entry, and version-2 files load with no
#:    frozen arrays — graphs re-freeze lazily at first field use.
#: 4. appends the journal-sequence stamp (u64): the highest mutation
#:    sequence number folded into this snapshot, ``0`` for a
#:    non-durable database.  Journal recovery replays only records
#:    with a higher sequence, so a crash *between* a compaction's
#:    base rewrite and its journal truncation cannot double-apply;
#:    version-3 files load with stamp 0 (replay everything).
FORMAT_VERSION = 4

#: Total header size; the payload starts at this file offset.  The
#: header itself (and its verification) lives in
#: :mod:`repro.persist.framing`, shared with traces and the journal.
HEADER_SIZE = framing.HEADER_SIZE

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


def _use_numpy() -> bool:
    """Whether the float-array bulk path goes through numpy.

    Governed by ``REPRO_SNAPSHOT_ARRAYS``: ``auto`` (default — numpy
    when importable), ``numpy`` (require it), ``struct`` (pure-python).
    Both paths produce byte-identical files.
    """
    mode = os.environ.get("REPRO_SNAPSHOT_ARRAYS", "auto").strip().lower()
    if mode not in ("auto", "numpy", "struct"):
        raise DatasetError(
            f"REPRO_SNAPSHOT_ARRAYS must be auto, numpy or struct, "
            f"got {mode!r}"
        )
    if mode == "struct":
        return False
    try:
        import numpy  # noqa: F401
    except ImportError:
        if mode == "numpy":
            raise DatasetError(
                "REPRO_SNAPSHOT_ARRAYS=numpy but numpy is not importable"
            ) from None
        return False
    return True


class BinaryWriter:
    """Accumulates one snapshot payload as little-endian records."""

    def __init__(self) -> None:
        self._buf = bytearray()
        self._numpy = _use_numpy()

    def u8(self, value: int) -> None:
        """Append an unsigned byte."""
        self._buf += _U8.pack(value)

    def u32(self, value: int) -> None:
        """Append an unsigned 32-bit integer."""
        self._buf += _U32.pack(value)

    def u64(self, value: int) -> None:
        """Append an unsigned 64-bit integer."""
        self._buf += _U64.pack(value)

    def i64(self, value: int) -> None:
        """Append a signed 64-bit integer (``-1`` encodes ``None``
        throughout the snapshot format)."""
        self._buf += _I64.pack(value)

    def f64(self, value: float) -> None:
        """Append a 64-bit float."""
        self._buf += _F64.pack(value)

    def str_(self, value: str) -> None:
        """Append a length-prefixed UTF-8 string."""
        raw = value.encode("utf-8")
        self.u32(len(raw))
        self._buf += raw

    def _write_floats(self, flat: list[float]) -> None:
        """The bulk float path: packed through numpy when present,
        :mod:`struct` otherwise — same bytes either way."""
        if not flat:
            return
        if self._numpy:
            import numpy as np

            self._buf += np.asarray(flat, dtype="<f8").tobytes()
        else:
            self._buf += struct.pack(f"<{len(flat)}d", *flat)

    def points(self, pts: Iterable[Point]) -> None:
        """Append a length-prefixed list of points as a flat
        ``x0 y0 x1 y1 ...`` float array."""
        flat: list[float] = []
        for p in pts:
            flat.append(p.x)
            flat.append(p.y)
        self.u32(len(flat) // 2)
        self._write_floats(flat)

    def f64_array(self, values: "Iterable[float]") -> None:
        """Append a length-prefixed bulk float64 array (CSR weights /
        coordinate vectors); accepts any iterable, including numpy
        arrays, and writes the same bytes on either bulk path."""
        if self._numpy:
            import numpy as np

            arr = np.asarray(values, dtype="<f8")
            self.u64(len(arr))
            self._buf += arr.tobytes()
        else:
            flat = [float(v) for v in values]
            self.u64(len(flat))
            self._write_floats(flat)

    def u32_array(self, values: "Iterable[int]") -> None:
        """Append a length-prefixed bulk uint32 array (CSR index
        vectors)."""
        if self._numpy:
            import numpy as np

            arr = np.asarray(values, dtype="<u4")
            self.u64(len(arr))
            self._buf += arr.tobytes()
        else:
            flat = [int(v) for v in values]
            self.u64(len(flat))
            if flat:
                self._buf += struct.pack(f"<{len(flat)}I", *flat)

    def getvalue(self) -> bytes:
        """The accumulated payload."""
        return bytes(self._buf)


class BinaryReader:
    """Decodes a snapshot payload, tracking absolute file offsets.

    Every decode error raises :class:`~repro.errors.DatasetError`
    naming the snapshot path and the file offset at which the payload
    ran short — the reader never returns partial records.
    """

    def __init__(
        self, data: bytes, *, path: str | Path, base_offset: int = HEADER_SIZE
    ) -> None:
        self._data = data
        self._pos = 0
        self._path = str(path)
        self._base = base_offset
        self._numpy = _use_numpy()

    @property
    def offset(self) -> int:
        """The absolute file offset of the next byte to decode."""
        return self._base + self._pos

    def _take(self, n: int) -> bytes:
        end = self._pos + n
        if end > len(self._data):
            raise DatasetError(
                f"{self._path}: truncated snapshot payload at offset "
                f"{self.offset} (needed {n} more byte(s))"
            )
        raw = self._data[self._pos : end]
        self._pos = end
        return raw

    def u8(self) -> int:
        """Decode an unsigned byte."""
        return _U8.unpack(self._take(1))[0]

    def u32(self) -> int:
        """Decode an unsigned 32-bit integer."""
        return _U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        """Decode an unsigned 64-bit integer."""
        return _U64.unpack(self._take(8))[0]

    def i64(self) -> int:
        """Decode a signed 64-bit integer."""
        return _I64.unpack(self._take(8))[0]

    def f64(self) -> float:
        """Decode a 64-bit float."""
        return _F64.unpack(self._take(8))[0]

    def str_(self) -> str:
        """Decode a length-prefixed UTF-8 string."""
        n = self.u32()
        return self._take(n).decode("utf-8")

    def _read_floats(self, n: int) -> list[float]:
        """The bulk float path (numpy when present, :mod:`struct`
        otherwise); decodes ``n`` 64-bit floats."""
        if n == 0:
            return []
        raw = self._take(8 * n)
        if self._numpy:
            import numpy as np

            return np.frombuffer(raw, dtype="<f8").tolist()
        return list(struct.unpack(f"<{n}d", raw))

    def points(self) -> list[Point]:
        """Decode a length-prefixed point list."""
        n = self.u32()
        flat = self._read_floats(2 * n)
        return [Point(flat[i], flat[i + 1]) for i in range(0, 2 * n, 2)]

    def f64_array(self) -> "list[float]":
        """Decode a length-prefixed bulk float64 array (as a numpy
        array when the bulk path is numpy, else a list)."""
        n = self.u64()
        raw = self._take(8 * n)
        if self._numpy:
            import numpy as np

            return np.frombuffer(raw, dtype="<f8").copy()
        if n == 0:
            return []
        return list(struct.unpack(f"<{n}d", raw))

    def u32_array(self) -> "list[int]":
        """Decode a length-prefixed bulk uint32 array (numpy array on
        the numpy bulk path, else a list)."""
        n = self.u64()
        raw = self._take(4 * n)
        if self._numpy:
            import numpy as np

            return np.frombuffer(raw, dtype="<u4").copy()
        if n == 0:
            return []
        return list(struct.unpack(f"<{n}I", raw))

    def expect_end(self) -> None:
        """Raise unless the payload was consumed exactly."""
        if self._pos != len(self._data):
            raise DatasetError(
                f"{self._path}: {len(self._data) - self._pos} trailing "
                f"byte(s) at offset {self.offset}"
            )


def write_snapshot(path: str | Path, payload: bytes) -> None:
    """Frame ``payload`` with the checksummed header and write it.

    Durable atomic replace (see
    :func:`repro.persist.framing.atomic_write_bytes`): unique temp
    sibling, fsync, rename, directory fsync — a crash or power loss at
    any point leaves either the old snapshot or the new one intact
    under the target name, never a torn file.
    """
    framing.write_framed(path, MAGIC, FORMAT_VERSION, payload)


def read_snapshot_versioned(path: str | Path) -> tuple[int, bytes]:
    """Read and verify a snapshot file; returns ``(format_version,
    payload)``.

    Verification order: magic, header checksum, format version, payload
    length, payload checksum.  Each failure raises
    :class:`~repro.errors.DatasetError` naming ``path`` and the byte
    offset of the inconsistency; nothing is decoded past a failure.
    """
    return framing.read_framed(
        path,
        magic=MAGIC,
        max_version=FORMAT_VERSION,
        kind="snapshot",
        what="repro snapshot",
    )


def read_snapshot(path: str | Path) -> bytes:
    """Read and verify a snapshot file; returns the payload bytes.

    :func:`read_snapshot_versioned` with the format version dropped —
    for callers that only decode the current format.
    """
    return read_snapshot_versioned(path)[1]
