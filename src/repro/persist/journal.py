"""Append-only write-ahead mutation journal.

A durable :class:`~repro.core.engine.ObstacleDatabase` (opened with
``durable=path`` or ``REPRO_JOURNAL``) appends every obstacle/entity
mutation here *before* applying it, fsyncing each record.  Crash
recovery is ``ObstacleDatabase.load(base, durable=journal)``: restore
the base snapshot, replay the journal's records through the same
index operations the live process used, and the result is
bit-identical to a process that never crashed.  Compaction
(``db.compact()``, or the size/ratio trigger — see
:func:`compaction_thresholds`) folds the journal into a new base
snapshot through the existing durable atomic-rename path and then
truncates the journal back to its header.

File layout (framing shared with snapshots and traces, see
:mod:`repro.persist.framing`)::

    offset 0   magic            8 bytes  (``b"RPROJRNL"``)
    offset 8   format version   u32
    offset 12  payload length   u64      (always 0 — stream format)
    offset 20  payload crc32    u32      (always 0)
    offset 24  header crc32     u32      (over bytes [0, 24))
    offset 28  record stream

Each record is individually framed and checksummed::

    offset +0   sequence number  u64     (monotonic, never reused)
    offset +8   payload length   u32
    offset +12  payload crc32    u32
    offset +16  record crc32     u32     (over the first 16 bytes)
    offset +20  payload          ``payload length`` bytes

Torn-tail discipline: recovery scans records in order.  A tail too
short to hold a record header, or a complete header whose payload
bytes run past end-of-file, is a torn append (the crash hit
mid-write); the file is silently truncated back to the last complete
record — the longest durable prefix.  A record whose header or
payload checksum does not match at full length is *corruption*, not a
crash artefact, and raises :class:`~repro.errors.DatasetError` naming
the path and byte offset before anything is applied.

The sequence number makes compaction crash-safe: each base snapshot
is stamped with the highest sequence folded into it (snapshot format
4), and recovery replays only records with a higher sequence.  A
``kill -9`` between a compaction's base rewrite and its journal
truncation therefore leaves records that recovery recognises as
already folded — they are skipped and the interrupted truncation is
completed, never double-applied.
"""

from __future__ import annotations

import os
import struct
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import DatasetError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.model import Obstacle
from repro.persist import framing
from repro.persist.codec import BinaryReader, BinaryWriter

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import ObstacleDatabase
    from repro.runtime.stats import RuntimeStats

#: First 8 bytes of every journal file.
JOURNAL_MAGIC = b"RPROJRNL"

#: The journal format this build writes (and the newest it reads).
#: Version history:
#:
#: 1. file header + self-checksummed record stream; record payloads
#:    are the four mutation kinds of :class:`MutationRecord`.
JOURNAL_VERSION = 1

#: The file header size; records start at this offset.
JOURNAL_HEADER_SIZE = framing.HEADER_SIZE

_RECORD_HEAD = struct.Struct("<QII")
_RECORD_CRC = struct.Struct("<I")

#: Per-record framing overhead, preceding each payload.
RECORD_HEADER_SIZE = _RECORD_HEAD.size + _RECORD_CRC.size

#: Wire codes for the four mutation kinds.
_CODES = {
    ("obstacle", "insert"): 1,
    ("obstacle", "delete"): 2,
    ("entity", "insert"): 3,
    ("entity", "delete"): 4,
}
_KINDS = {code: key for key, code in _CODES.items()}

#: Default compaction triggers (see :func:`compaction_thresholds`).
DEFAULT_COMPACT_BYTES = 1 << 16
DEFAULT_COMPACT_RATIO = 2.0


@dataclass(frozen=True)
class MutationRecord:
    """One journaled mutation — also the serving pool's delta unit.

    ``scope`` selects which fields matter: obstacle records carry the
    parent-assigned ``oid`` plus the polygon ``vertices`` (deletes too,
    so replay can address the R*-tree by the obstacle's MBR without a
    scan); entity records carry the ``point``.
    """

    scope: str  # "obstacle" | "entity"
    op: str  # "insert" | "delete"
    set_name: str
    oid: int = -1
    vertices: tuple[Point, ...] = ()
    point: Point | None = None


def obstacle_record(op: str, set_name: str, obstacle: Obstacle) -> MutationRecord:
    """The journal record for an obstacle mutation."""
    return MutationRecord(
        scope="obstacle",
        op=op,
        set_name=set_name,
        oid=obstacle.oid,
        vertices=tuple(obstacle.polygon.vertices),
    )


def entity_record(op: str, set_name: str, point: Point) -> MutationRecord:
    """The journal record for an entity mutation."""
    return MutationRecord(scope="entity", op=op, set_name=set_name, point=point)


def encode_record(record: MutationRecord) -> bytes:
    """The record's payload bytes (unframed)."""
    code = _CODES.get((record.scope, record.op))
    if code is None:
        raise DatasetError(
            f"cannot encode mutation record of unknown kind "
            f"{record.scope!r}/{record.op!r}"
        )
    w = BinaryWriter()
    w.u8(code)
    w.str_(record.set_name)
    if record.scope == "obstacle":
        w.i64(record.oid)
        w.points(record.vertices)
    else:
        w.f64(record.point.x)
        w.f64(record.point.y)
    return w.getvalue()


def decode_record(
    payload: bytes, *, path: str | Path = "<journal>", base_offset: int = 0
) -> MutationRecord:
    """Decode a record payload (inverse of :func:`encode_record`)."""
    r = BinaryReader(payload, path=path, base_offset=base_offset)
    code = r.u8()
    kind = _KINDS.get(code)
    if kind is None:
        raise DatasetError(
            f"{path}: unknown mutation record kind {code} at offset "
            f"{r.offset - 1}"
        )
    scope, op = kind
    set_name = r.str_()
    if scope == "obstacle":
        oid = r.i64()
        vertices = tuple(r.points())
        record = MutationRecord(
            scope=scope, op=op, set_name=set_name, oid=oid, vertices=vertices
        )
    else:
        record = MutationRecord(
            scope=scope,
            op=op,
            set_name=set_name,
            point=Point(r.f64(), r.f64()),
        )
    r.expect_end()
    return record


def apply_record(db: "ObstacleDatabase", record: MutationRecord) -> None:
    """Apply one record to ``db`` exactly as the originating process did.

    Obstacle records go straight through the named index with the
    parent-assigned oid preserved (``_next_oid`` is bumped past it, so
    ids never collide after replay); entity records go through the
    entity-set entry points.  Both journal recovery and the serving
    pool's worker-side delta replay use this one function.
    """
    if record.scope == "obstacle":
        index = db._obstacle_index_named(record.set_name)
        obstacle = Obstacle(record.oid, Polygon(record.vertices))
        if record.op == "insert":
            index.insert(obstacle)
            if record.oid >= db._next_oid:
                db._next_oid = record.oid + 1
        else:
            index.delete(obstacle)
    elif record.op == "insert":
        db.insert_entity(record.set_name, record.point)
    else:
        db.delete_entity(record.set_name, record.point)


def compaction_thresholds() -> tuple[int, float]:
    """The auto-compaction trigger ``(min_bytes, ratio)`` from the env.

    After each journaled mutation on an anchored database (one with a
    base snapshot), the journal is folded into the base when its
    record bytes reach ``max(min_bytes, ratio * base_size)`` —
    ``REPRO_JOURNAL_COMPACT_BYTES`` (default ``65536``) and
    ``REPRO_JOURNAL_COMPACT_RATIO`` (default ``2.0``).
    """
    raw_bytes = os.environ.get(
        "REPRO_JOURNAL_COMPACT_BYTES", str(DEFAULT_COMPACT_BYTES)
    )
    raw_ratio = os.environ.get(
        "REPRO_JOURNAL_COMPACT_RATIO", str(DEFAULT_COMPACT_RATIO)
    )
    try:
        min_bytes = int(raw_bytes)
    except ValueError:
        raise DatasetError(
            f"REPRO_JOURNAL_COMPACT_BYTES must be an integer, got {raw_bytes!r}"
        ) from None
    try:
        ratio = float(raw_ratio)
    except ValueError:
        raise DatasetError(
            f"REPRO_JOURNAL_COMPACT_RATIO must be a number, got {raw_ratio!r}"
        ) from None
    return min_bytes, ratio


def resolve_journal_path(durable: "str | os.PathLike[str] | None") -> str | None:
    """The journal file path for a ``durable=`` argument.

    ``None`` falls back to ``REPRO_JOURNAL`` (empty/unset → not
    durable).  A path naming an existing *directory* allocates a
    unique ``*.journal`` file inside it — that is how a whole test
    suite (the CI crash-recovery leg) can run journaled without the
    databases clobbering one another; anything else is used verbatim
    as the journal file path.
    """
    if durable is None:
        durable = os.environ.get("REPRO_JOURNAL", "").strip() or None
        if durable is None:
            return None
    path = os.fspath(durable)
    if os.path.isdir(path):
        fd, path = tempfile.mkstemp(dir=path, prefix="db-", suffix=".journal")
        os.close(fd)
    return path


class MutationJournal:
    """One open journal file: append, recover, truncate.

    Appends write the framed record and fsync before returning — once
    :meth:`append` returns, the mutation survives ``kill -9``.  When
    ``stats`` is set (the owning database's
    :class:`~repro.runtime.stats.RuntimeStats`), each append ticks
    ``journal_appends``/``journal_bytes``.
    """

    def __init__(
        self, path: str, fh, *, size: int, records: int, next_seq: int = 1
    ) -> None:
        self.path = path
        self._fh = fh
        self._size = size
        self._records = records
        self._next_seq = next_seq
        self.stats: "RuntimeStats | None" = None

    # -- opening -----------------------------------------------------------

    @classmethod
    def create(cls, path: "str | os.PathLike[str]") -> "MutationJournal":
        """Open ``path`` as a fresh, empty journal.

        A missing, empty, or header-only file is (re)initialised in
        place.  A journal that already holds records is refused — that
        is durable state; recover it with
        ``ObstacleDatabase.load(base, durable=path)`` or delete the
        file to discard it.
        """
        name = os.fspath(path)
        existing = 0
        if os.path.exists(name) and os.path.getsize(name) >= JOURNAL_HEADER_SIZE:
            probe, records = cls.recover(name)
            probe.close()
            existing = len(records)
        if existing:
            raise DatasetError(
                f"{name}: journal already holds {existing} record(s); "
                f"recover it with ObstacleDatabase.load(base, "
                f"durable=...) or delete the file to start fresh"
            )
        fh = open(name, "w+b")
        fh.write(framing.pack_header(JOURNAL_MAGIC, JOURNAL_VERSION, b""))
        fh.flush()
        os.fsync(fh.fileno())
        framing.fsync_directory(os.path.dirname(name) or ".")
        return cls(name, fh, size=JOURNAL_HEADER_SIZE, records=0)

    @classmethod
    def recover(
        cls, path: "str | os.PathLike[str]"
    ) -> "tuple[MutationJournal, list[tuple[int, MutationRecord]]]":
        """Open ``path``, recovering the longest durable prefix.

        Returns the open journal plus the decoded ``(seq, record)``
        pairs to replay.  A torn tail (crash mid-append, or
        mid-creation for a file shorter than the header) is truncated
        away silently; a checksum mismatch at full record length
        raises :class:`~repro.errors.DatasetError` naming path and
        offset — and nothing is applied, because the caller only sees
        a fully decoded record list.
        """
        name = os.fspath(path)
        if not os.path.exists(name):
            return cls.create(name), []
        with open(name, "rb") as fh:
            blob = fh.read()
        if len(blob) < JOURNAL_HEADER_SIZE:
            # Torn creation: the crash hit before the header was
            # durable, so nothing was ever journaled.  Start fresh.
            return cls.create(name), []
        framing.verify_header(
            blob,
            magic=JOURNAL_MAGIC,
            max_version=JOURNAL_VERSION,
            path=name,
            kind="journal",
            what="repro mutation journal",
        )
        records: list[tuple[int, MutationRecord]] = []
        pos = JOURNAL_HEADER_SIZE
        durable_end = pos
        while pos < len(blob):
            if len(blob) - pos < RECORD_HEADER_SIZE:
                break  # torn tail: a partial record header
            seq, payload_len, payload_crc = _RECORD_HEAD.unpack_from(blob, pos)
            (head_crc,) = _RECORD_CRC.unpack_from(blob, pos + _RECORD_HEAD.size)
            if head_crc != zlib.crc32(blob[pos : pos + _RECORD_HEAD.size]):
                raise DatasetError(
                    f"{name}: journal record header checksum mismatch "
                    f"at offset {pos}"
                )
            start = pos + RECORD_HEADER_SIZE
            if len(blob) - start < payload_len:
                break  # torn tail: the payload write did not finish
            payload = blob[start : start + payload_len]
            if zlib.crc32(payload) != payload_crc:
                raise DatasetError(
                    f"{name}: journal record payload checksum mismatch "
                    f"at offset {start}"
                )
            records.append(
                (seq, decode_record(payload, path=name, base_offset=start))
            )
            pos = start + payload_len
            durable_end = pos
        fh = open(name, "r+b")
        if durable_end < len(blob):
            fh.truncate(durable_end)
            fh.flush()
            os.fsync(fh.fileno())
        fh.seek(durable_end)
        next_seq = records[-1][0] + 1 if records else 1
        journal = cls(
            name, fh, size=durable_end, records=len(records), next_seq=next_seq
        )
        return journal, records

    # -- appending ---------------------------------------------------------

    def append(self, record: MutationRecord) -> int:
        """Durably append ``record``; returns the bytes written."""
        payload = encode_record(record)
        head = _RECORD_HEAD.pack(
            self._next_seq, len(payload), zlib.crc32(payload)
        )
        framed = head + _RECORD_CRC.pack(zlib.crc32(head)) + payload
        self._fh.seek(self._size)
        self._fh.write(framed)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._size += len(framed)
        self._records += 1
        self._next_seq += 1
        if self.stats is not None:
            self.stats.journal_appends += 1
            self.stats.journal_bytes += len(framed)
        return len(framed)

    def reset(self) -> None:
        """Truncate back to the bare header (a new base snapshot has
        absorbed every record).  The sequence counter keeps counting —
        sequences are never reused, which is what lets recovery tell a
        record folded into the base from one that is not.
        """
        self._fh.truncate(JOURNAL_HEADER_SIZE)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.seek(JOURNAL_HEADER_SIZE)
        self._size = JOURNAL_HEADER_SIZE
        self._records = 0

    def ensure_seq_floor(self, floor: int) -> None:
        """Guarantee future appends carry a sequence above ``floor``
        (the base snapshot's folded-sequence stamp) — required when a
        fresh journal file is attached to a database restored from a
        base that had already folded higher sequences."""
        if self._next_seq <= floor:
            self._next_seq = floor + 1

    def close(self) -> None:
        """Close the file handle (the journal file stays on disk)."""
        if not self._fh.closed:
            self._fh.close()

    # -- sizing ------------------------------------------------------------

    @property
    def size(self) -> int:
        """Current file size in bytes (header + records)."""
        return self._size

    @property
    def records_bytes(self) -> int:
        """Bytes of framed records past the header — the compaction
        trigger input."""
        return self._size - JOURNAL_HEADER_SIZE

    @property
    def record_count(self) -> int:
        """Records currently in the journal (since the last reset)."""
        return self._records

    @property
    def last_seq(self) -> int:
        """The sequence number of the most recently appended record
        (``0`` before the first append) — what a base snapshot saved
        *now* stamps as its folded sequence."""
        return self._next_seq - 1
