"""``repro-snapshot`` — build, inspect and verify snapshot files.

Usage::

    repro-snapshot save --obstacles obstacles.txt \\
        [--entities cafes=cafes.txt ...] [--shards 16] [--snap 2.0] \\
        [--warm 8] [--no-refs] --out scene.snap
    repro-snapshot info scene.snap
    repro-snapshot verify scene.snap

``save`` builds an :class:`~repro.core.engine.ObstacleDatabase` from
plain-text dataset files (:mod:`repro.datasets.io` formats), optionally
pre-warms the visibility-graph cache (``--warm N`` runs N deterministic
queries so the snapshot ships warm), records the dataset files by
content hash (disable with ``--no-refs``), and writes the snapshot.
``info`` prints the structural summary without assembling a database;
``verify`` performs a full restore plus R*-tree invariant checks.

Also runnable without installation as ``python -m repro.persist.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-snapshot",
        description="Build, inspect and verify obstacle-database snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    save = sub.add_parser(
        "save", help="build a database from dataset files and snapshot it"
    )
    save.add_argument(
        "--obstacles",
        required=True,
        help="obstacle dataset file (one 'oid x1 y1 x2 y2 ...' per line)",
    )
    save.add_argument(
        "--entities",
        action="append",
        default=[],
        metavar="NAME=FILE",
        help="entity dataset as NAME=FILE (one 'x y' per line); repeatable",
    )
    save.add_argument(
        "--shards",
        type=int,
        default=None,
        help="spatially shard the obstacle set over at least N cells",
    )
    save.add_argument(
        "--snap",
        type=float,
        default=None,
        help="graph-cache spatial-key quantum (default: REPRO_CACHE_SNAP)",
    )
    save.add_argument(
        "--cache-size",
        type=int,
        default=64,
        help="graph-cache capacity (default 64)",
    )
    save.add_argument(
        "--warm",
        type=int,
        default=0,
        metavar="N",
        help="pre-warm the cache with N deterministic queries before saving",
    )
    save.add_argument(
        "--no-refs",
        action="store_true",
        help="do not record the dataset files by content hash",
    )
    save.add_argument("--out", required=True, help="snapshot file to write")

    info = sub.add_parser("info", help="print a snapshot's structure")
    info.add_argument("snapshot", help="snapshot file")

    verify = sub.add_parser(
        "verify", help="fully restore a snapshot and check tree invariants"
    )
    verify.add_argument("snapshot", help="snapshot file")
    return parser


def _cmd_save(args: argparse.Namespace) -> int:
    from repro.core.engine import ObstacleDatabase
    from repro.datasets.io import load_obstacles, load_points

    obstacles = load_obstacles(args.obstacles)
    refs = {"obstacles": args.obstacles}
    entity_sets: list[tuple[str, str]] = []
    for spec in args.entities:
        name, sep, file_path = spec.partition("=")
        if not sep or not name or not file_path:
            print(f"--entities needs NAME=FILE, got {spec!r}", file=sys.stderr)
            return 2
        entity_sets.append((name, file_path))
        refs[f"entities:{name}"] = file_path
    db = ObstacleDatabase(
        obstacles,
        shards=args.shards,
        graph_cache_snap=args.snap,
        graph_cache_size=args.cache_size,
    )
    for name, file_path in entity_sets:
        db.add_entity_set(name, load_points(file_path))
    if args.warm > 0:
        _warm(db, entity_sets, args.warm)
    db.save(args.out, dataset_refs=None if args.no_refs else refs)
    stats = db.runtime_stats()
    print(
        f"wrote {args.out}: {len(obstacles)} obstacle(s), "
        f"{len(entity_sets)} entity set(s), "
        f"{stats['graph_builds']} cached graph build(s)"
    )
    return 0


def _warm(db: object, entity_sets: list[tuple[str, str]], n: int) -> None:
    """Prime the graph cache with ``n`` deterministic queries: nearest
    lookups anchored at the first entity set's points when one exists,
    otherwise obstructed distances along the universe diagonal."""
    from repro.geometry.point import Point

    if entity_sets:
        name = entity_sets[0][0]
        tree = db.entity_tree(name)  # type: ignore[attr-defined]
        points = sorted(p for p, __ in tree.items())
        for p in points[:n]:
            db.nearest(name, p, 1)  # type: ignore[attr-defined]
        return
    universe = db.universe()  # type: ignore[attr-defined]
    if universe is None:
        return
    for i in range(n):
        t0 = (i + 1) / (n + 1)
        t1 = (i + 2) / (n + 2)
        a = Point(
            universe.minx + t0 * universe.width,
            universe.miny + t0 * universe.height,
        )
        b = Point(
            universe.minx + t1 * universe.width,
            universe.miny + t1 * universe.height,
        )
        db.obstructed_distance(a, b)  # type: ignore[attr-defined]


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.persist.store import snapshot_info

    info = snapshot_info(args.snapshot)
    print(f"{info['path']}: snapshot format v{info['format_version']}")
    shards = info["shards"]
    print(
        f"  config: shards={shards if shards is not None else 'monolithic'}, "
        f"cache={info['graph_cache_size']}, snap={info['graph_cache_snap']:g}, "
        f"next_oid={info['next_oid']}"
    )
    print(f"  distinct obstacles: {info['distinct_obstacles']}")
    for entry in info["obstacle_sets"]:  # type: ignore[union-attr]
        extra = (
            f", {entry['shards']} shard(s), grid order {entry['grid_order']}"
            if entry["kind"] == "sharded"
            else ""
        )
        print(
            f"  obstacle set {entry['name']!r}: {entry['kind']}, "
            f"{entry['obstacles']} obstacle(s), {entry['pages']} page(s)"
            f"{extra}"
        )
        print(
            f"    pages: {entry['reads']} read(s), {entry['misses']} "
            f"miss(es), {entry['writes']} write(s)"
        )
    for entry in info["entity_sets"]:  # type: ignore[union-attr]
        print(
            f"  entity set {entry['name']!r}: {entry['points']} point(s), "
            f"{entry['pages']} page(s)"
        )
        print(
            f"    pages: {entry['reads']} read(s), {entry['misses']} "
            f"miss(es), {entry['writes']} write(s)"
        )
    print(f"  cached visibility graphs: {info['cached_graphs']}")
    for i, entry in enumerate(info["cache_entries"]):  # type: ignore[union-attr]
        cx, cy = entry["center"]
        print(
            f"    graph {i}: center=({cx:g}, {cy:g}), "
            f"covered={entry['covered']:g}, {entry['guests']} guest(s), "
            f"{entry['obstacles']} obstacle(s), {entry['nodes']} node(s), "
            f"{entry['edges']} edge(s), {entry['stamp']} stamp"
        )
    stats = info["runtime_stats"]
    if stats:  # type: ignore[truthy-bool]
        ticked = {
            k: v for k, v in stats.items() if v and k != "backend"  # type: ignore[union-attr]
        }
        backend = stats.get("backend", "")  # type: ignore[union-attr]
        label = f" (backend {backend})" if backend else ""
        if ticked:
            inner = ", ".join(
                f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sorted(ticked.items())
            )
            print(f"  runtime counters{label}: {inner}")
        else:
            print(f"  runtime counters{label}: all zero")
    for ref in info["dataset_refs"]:  # type: ignore[union-attr]
        print(
            f"  dataset ref {ref['label']!r}: {ref['path']} "
            f"(sha256 {ref['sha256'][:12]}...)"
        )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.engine import ObstacleDatabase

    db = ObstacleDatabase.load(args.snapshot)
    trees = 0
    for index in db._obstacle_indexes.values():
        for tree in index.trees():
            tree.check_invariants()
            trees += 1
    for tree in db._entity_trees.values():
        tree.check_invariants()
        trees += 1
    cached = len(db.context.cache)
    print(
        f"{args.snapshot}: OK ({trees} tree(s) pass invariants, "
        f"{cached} cached graph(s) restored)"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "save":
            return _cmd_save(args)
        if args.command == "info":
            return _cmd_info(args)
        return _cmd_verify(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
