"""SVG rendering of obstacle scenes, query results and paths.

Dependency-free visual debugging: obstacles as filled polygons,
entities/queries as dots, shortest paths as polylines, query ranges as
circles.  Produces a standalone ``<svg>`` document string.

Example::

    svg = scene_to_svg(obstacles, entities=points, query=q,
                       paths=[route], ranges=[(q, e)])
    save_svg("scene.svg", svg)
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.model import Obstacle

_STYLE = {
    "obstacle_fill": "#c8c8c8",
    "obstacle_stroke": "#707070",
    "entity_fill": "#1f77b4",
    "query_fill": "#d62728",
    "path_stroke": "#2ca02c",
    "range_stroke": "#d62728",
    "highlight_fill": "#ff7f0e",
}


def scene_to_svg(
    obstacles: Sequence[Obstacle],
    *,
    entities: Iterable[Point] = (),
    highlights: Iterable[Point] = (),
    query: Point | None = None,
    paths: Iterable[Sequence[Point]] = (),
    ranges: Iterable[tuple[Point, float]] = (),
    width: int = 800,
) -> str:
    """Render a scene to an SVG document string.

    ``highlights`` draws selected entities (e.g. query results) in a
    distinct colour; ``ranges`` draws ``(center, radius)`` disks.
    """
    bounds = _scene_bounds(obstacles, entities, highlights, query, paths, ranges)
    pad = 0.05 * max(bounds.width, bounds.height, 1.0)
    bounds = bounds.expanded(pad)
    scale = width / max(bounds.width, 1e-12)
    height = max(1, int(bounds.height * scale))

    def sx(x: float) -> float:
        return (x - bounds.minx) * scale

    def sy(y: float) -> float:
        # flip: SVG y grows downward
        return (bounds.maxy - y) * scale

    dot = max(2.0, 0.004 * width)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    for obs in obstacles:
        pts = " ".join(
            f"{sx(v.x):.2f},{sy(v.y):.2f}" for v in obs.polygon.vertices
        )
        parts.append(
            f'<polygon points="{pts}" fill="{_STYLE["obstacle_fill"]}" '
            f'stroke="{_STYLE["obstacle_stroke"]}" stroke-width="1"/>'
        )
    for center, radius in ranges:
        parts.append(
            f'<circle cx="{sx(center.x):.2f}" cy="{sy(center.y):.2f}" '
            f'r="{radius * scale:.2f}" fill="none" '
            f'stroke="{_STYLE["range_stroke"]}" stroke-width="1" '
            f'stroke-dasharray="6 4"/>'
        )
    for path in paths:
        coords = " ".join(f"{sx(p.x):.2f},{sy(p.y):.2f}" for p in path)
        parts.append(
            f'<polyline points="{coords}" fill="none" '
            f'stroke="{_STYLE["path_stroke"]}" stroke-width="2"/>'
        )
    for p in entities:
        parts.append(
            f'<circle cx="{sx(p.x):.2f}" cy="{sy(p.y):.2f}" r="{dot:.2f}" '
            f'fill="{_STYLE["entity_fill"]}"/>'
        )
    for p in highlights:
        parts.append(
            f'<circle cx="{sx(p.x):.2f}" cy="{sy(p.y):.2f}" '
            f'r="{dot * 1.4:.2f}" fill="{_STYLE["highlight_fill"]}"/>'
        )
    if query is not None:
        parts.append(
            f'<circle cx="{sx(query.x):.2f}" cy="{sy(query.y):.2f}" '
            f'r="{dot * 1.8:.2f}" fill="{_STYLE["query_fill"]}"/>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(path: str, svg: str) -> None:
    """Write an SVG document to a file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(svg)


def _scene_bounds(
    obstacles: Sequence[Obstacle],
    entities: Iterable[Point],
    highlights: Iterable[Point],
    query: Point | None,
    paths: Iterable[Sequence[Point]],
    ranges: Iterable[tuple[Point, float]],
) -> Rect:
    rects = [o.mbr for o in obstacles]
    points = list(entities) + list(highlights)
    if query is not None:
        points.append(query)
    for path in paths:
        points.extend(path)
    for center, radius in ranges:
        rects.append(
            Rect(
                center.x - radius, center.y - radius,
                center.x + radius, center.y + radius,
            )
        )
    if points:
        rects.append(Rect.from_points(points))
    if not rects:
        return Rect(0.0, 0.0, 1.0, 1.0)
    return Rect.union_all(rects)
